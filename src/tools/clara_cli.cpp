// clara — command-line front end.
//
//   clara list-nfs                      list the built-in NF corpus
//   clara list-nics                     list LNIC profiles
//   clara print --nf <name> [--lowered] print an NF's CIR (optionally
//                                       after substitution + patterns)
//   clara analyze --nf <name>|--nf-file <f.cir> [--nic <profile>]
//                 [--workload "<spec>"] [--greedy] [--no-patterns]
//                 [--paths] [--energy] [--partial]
//   clara simulate --nf <name> [--workload "<spec>"]
//                                       run the hand-ported NF on the
//                                       simulated device
//   clara microbench                    extract device parameters
//   clara trace-gen --workload "<spec>" --out <file.cltr>
//   clara trace-info <file.cltr>
//
// Workload spec syntax: "tcp=0.8 flows=10000 payload=300 pps=60000
// packets=50000 zipf=1.0 arrivals=deterministic seed=42".
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cir/printer.hpp"
#include "cir/verify.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/version.hpp"
#include "obs/accuracy.hpp"
#include "obs/benchdiff.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "ilp/instances.hpp"
#include "ilp/solver.hpp"
#include "core/cache.hpp"
#include "core/clara.hpp"
#include "core/adversarial.hpp"
#include "core/request.hpp"
#include "core/sweep.hpp"
#include "fault/fault.hpp"
#include "frontend/p4lite.hpp"
#include "microbench/microbench.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "passes/api_subst.hpp"
#include "passes/patterns.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "workload/analysis.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace clara;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
  /// Non-empty when parsing rejected an option (unknown key).
  std::string error;

  [[nodiscard]] bool has(const std::string& key) const { return options.count(key) > 0; }
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = {}) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

/// Every option key any command accepts. parse_args rejects keys outside
/// this list — a typo like --sweep-psp used to be silently ignored and
/// the run would quietly do less than asked.
const std::vector<std::string>& known_option_keys() {
  static const std::vector<std::string> kKeys = {
      "band", "breakdown", "cache", "cache-entries", "chaos", "connect", "csum-sw", "derate-unit",
      "energy", "fail-unit", "fault-plan", "flight-out", "greedy", "jobs", "lowered",
      "max-inflight", "max-rel-err", "metrics-format", "metrics-out", "nf", "nf-file", "nf-p4",
      "nic", "no-flow-cache", "no-optimize", "no-patterns", "out", "partial", "paths",
      "pivot-threshold", "serve-connections", "serve-requests", "socket", "sweep-pps",
      "threshold", "time-budget-ms", "trace", "trace-out", "validate", "workload"};
  return kKeys;
}

/// True for options that take no value (bare --flag form).
bool is_bare_flag(const std::string& key) {
  return key == "lowered" || key == "greedy" || key == "no-patterns" || key == "no-optimize" ||
         key == "paths" || key == "energy" || key == "partial" || key == "csum-sw" ||
         key == "no-flow-cache" || key == "breakdown" || key == "validate" || key == "chaos";
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      args.command = "help";
    } else if (starts_with(token, "--")) {
      std::string key = token.substr(2);
      std::string value;
      bool has_value = false;
      if (const auto eq = key.find('='); eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
        has_value = true;
      }
      const auto& known = known_option_keys();
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        args.error = strf("unknown option --%s", key.c_str());
        const std::string suggestion = closest_match(key, known);
        if (!suggestion.empty()) args.error += strf(" (did you mean --%s?)", suggestion.c_str());
        args.error += "\nvalid options:";
        for (const auto& k : known) args.error += " --" + k;
        return args;
      }
      if (has_value) {
        args.options[key] = std::move(value);
      } else if (is_bare_flag(key)) {
        args.options[key] = "1";
      } else if (i + 1 < argc) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "";
      }
    } else if (args.command.empty()) {
      args.command = std::move(token);
    } else {
      args.positional.push_back(std::move(token));
    }
  }
  return args;
}

/// Builds the process-wide fault plan from --fault-plan / --fail-unit /
/// --derate-unit and installs it before any command runs. Returns false
/// after reporting the error on stderr.
bool install_fault_plan(const Args& args) {
  fault::FaultPlan plan;
  if (args.has("fault-plan")) {
    std::ifstream in(args.get("fault-plan"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.get("fault-plan").c_str());
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = fault::FaultPlan::parse(buffer.str());
    if (!parsed) {
      std::fprintf(stderr, "fault-plan error: %s\n", parsed.error().message.c_str());
      return false;
    }
    plan = std::move(parsed).value();
  }
  for (const auto& item : split(args.get("fail-unit"), ',')) {
    const auto name = trim(item);
    if (!name.empty()) plan.failed_units.emplace_back(name);
  }
  for (const auto& item : split(args.get("derate-unit"), ',')) {
    const auto spec = trim(item);
    if (spec.empty()) continue;
    const auto colon = spec.find(':');
    const auto pct = colon == std::string_view::npos
                         ? std::nullopt
                         : parse_double(spec.substr(colon + 1));
    if (!pct || *pct <= 0.0 || *pct > 100.0) {
      std::fprintf(stderr, "--derate-unit expects name:pct with pct in (0,100], got '%s'\n",
                   std::string(spec).c_str());
      return false;
    }
    plan.derated_units.emplace_back(std::string(spec.substr(0, colon)), *pct);
  }
  if (!plan.empty()) fault::set_plan(std::move(plan));
  return true;
}

// --- Local NF loading (print / simulate / adversarial) -----------------------
//
// The analysis commands no longer load NFs in-process — they build a
// core::Request and let the Service resolve the NF (the corpus itself
// lives in serve::nf_registry, shared with the daemon). load_nf remains
// for the commands that genuinely need a local cir::Function.

std::optional<cir::Function> load_nf(const Args& args) {
  if (args.has("nf-p4")) {
    std::ifstream in(args.get("nf-p4"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.get("nf-p4").c_str());
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto fn = frontend::compile_p4lite(buffer.str());
    if (!fn) {
      std::fprintf(stderr, "p4lite error: %s\n", fn.error().message.c_str());
      return std::nullopt;
    }
    return std::move(fn).value();
  }
  if (args.has("nf-file")) {
    std::ifstream in(args.get("nf-file"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.get("nf-file").c_str());
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto mod = cir::parse_module(buffer.str());
    if (!mod) {
      std::fprintf(stderr, "parse error: %s\n", mod.error().message.c_str());
      return std::nullopt;
    }
    if (auto status = cir::verify(mod.value()); !status) {
      std::fprintf(stderr, "verification error: %s\n", status.error().message.c_str());
      return std::nullopt;
    }
    if (mod.value().functions.empty()) {
      std::fprintf(stderr, "module has no functions\n");
      return std::nullopt;
    }
    return mod.value().functions.front();
  }
  const std::string name = args.get("nf");
  if (const serve::NfEntry* entry = serve::find_nf(name)) return entry->build();
  std::fprintf(stderr, "unknown NF '%s' (try: clara list-nfs)\n", name.c_str());
  return std::nullopt;
}

std::optional<lnic::NicProfile> load_nic(const Args& args) {
  const std::string name = args.get("nic", "netronome-agilio-cx");
  for (auto& profile : lnic::all_profiles()) {
    if (profile.name == name) return std::move(profile);
  }
  std::fprintf(stderr, "unknown NIC '%s' (try: clara list-nics)\n", name.c_str());
  return std::nullopt;
}

std::optional<workload::Trace> load_trace(const Args& args) {
  if (args.has("trace")) {
    auto trace = workload::read_trace(args.get("trace"));
    if (!trace) {
      std::fprintf(stderr, "trace error: %s\n", trace.error().message.c_str());
      return std::nullopt;
    }
    return std::move(trace).value();
  }
  const std::string spec = args.get("workload", "tcp=0.8 flows=10000 payload=300 pps=60000 packets=20000");
  auto profile = workload::parse_profile(spec);
  if (!profile) {
    std::fprintf(stderr, "workload error: %s\n", profile.error().message.c_str());
    return std::nullopt;
  }
  // Echo the effective seed so any run can be reproduced exactly.
  std::fprintf(stderr, "workload seed %llu: %s\n", (unsigned long long)profile.value().seed,
               profile.value().serialize().c_str());
  return workload::generate_trace(profile.value());
}

// --- Thin-client plumbing -----------------------------------------------------

std::optional<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Pulls one `key=value` out of a serialized workload spec
/// ("tcp=0.8 flows=10000 ... seed=42") — the response echoes the
/// effective profile, so the client never re-derives defaults.
std::string spec_value(const std::string& spec, std::string_view key) {
  for (const auto& token : split(spec, ' ')) {
    const std::string_view t = trim(token);
    if (t.size() > key.size() + 1 && t.substr(0, key.size()) == key && t[key.size()] == '=') {
      return std::string(t.substr(key.size() + 1));
    }
  }
  return {};
}

/// Sends requests either to an in-process Service (the default) or to a
/// running clarad when --connect=<socket> is given. Both paths are the
/// same entry point the daemon serves — the CLI builds Requests and
/// renders Responses, it never reaches into the pipeline itself.
class RequestRunner {
 public:
  explicit RequestRunner(const Args& args) : connect_(args.get("connect")) {}

  std::optional<core::Response> run(core::Request request) {
    request.id = strf("cli-%zu", next_id_++);
    if (connect_.empty()) return service_.handle(request);
    if (!client_) {
      auto client = serve::Client::connect(connect_);
      if (!client) {
        std::fprintf(stderr, "connect %s: %s\n", connect_.c_str(),
                     client.error().message.c_str());
        return std::nullopt;
      }
      client_.emplace(std::move(client).value());
    }
    // Retrying call: the CLI survives a daemon restart mid-sweep — the
    // retry loop reconnects on transport errors and honors the server's
    // retry_after_ms hint on kOverloaded.
    auto response = client_->call_with_retry(request);
    if (!response) {
      std::fprintf(stderr, "clarad: %s\n", response.error().message.c_str());
      return std::nullopt;
    }
    return std::move(response).value();
  }

 private:
  std::string connect_;
  std::size_t next_id_ = 0;
  serve::Service service_{serve::ServiceOptions{0}};  // CLI side: no admission cap
  std::optional<serve::Client> client_;
};

/// Builds the Request all analyze variants share from the CLI flags.
/// Only file I/O (--nf-file / --nf-p4) happens client-side; a remote
/// daemon sees the same inline CIR a local run does.
std::optional<core::Request> build_analyze_request(const Args& args) {
  core::Request request;
  request.nf = args.get("nf");
  if (args.has("nf-p4")) {
    const auto text = read_text_file(args.get("nf-p4"));
    if (!text) return std::nullopt;
    auto fn = frontend::compile_p4lite(*text);
    if (!fn) {
      std::fprintf(stderr, "p4lite error: %s\n", fn.error().message.c_str());
      return std::nullopt;
    }
    cir::Module mod;
    mod.name = fn.value().name;
    mod.functions.push_back(std::move(fn).value());
    request.nf_cir = cir::print_module(mod);
  } else if (args.has("nf-file")) {
    const auto text = read_text_file(args.get("nf-file"));
    if (!text) return std::nullopt;
    request.nf_cir = *text;  // the server parses and verifies
  }
  request.nic = args.get("nic", "netronome-agilio-cx");
  if (args.has("trace")) {
    request.trace_file = args.get("trace");
  } else if (args.has("workload")) {
    request.workload = args.get("workload");
  }
  if (args.has("greedy")) request.options.stages.set(core::PipelineStages::kIlp, false);
  if (args.has("no-patterns")) request.options.stages.set(core::PipelineStages::kPatterns, false);
  if (args.has("no-optimize")) request.options.stages.set(core::PipelineStages::kOptimize, false);
  if (args.has("time-budget-ms")) {
    request.options.map.time_budget_ms = std::atof(args.get("time-budget-ms").c_str());
  }
  request.energy = args.has("energy");
  request.breakdown = args.has("breakdown");
  request.partial = args.has("partial");
  request.paths = args.has("paths");
  return request;
}

// --- Commands -----------------------------------------------------------------

int cmd_list_nfs() {
  TextTable table({"name", "description"});
  for (const auto& entry : serve::nf_registry()) table.add_row({entry.name, entry.description});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_list_nics() {
  TextTable table({"name", "compute units", "memory regions", "clock"});
  for (const auto& profile : lnic::all_profiles()) {
    table.add_row({profile.name, strf("%zu", profile.graph.compute_units().size()),
                   strf("%zu", profile.graph.memory_regions().size()),
                   strf("%.1f MHz", profile.params.scalar(lnic::keys::kClockHz) / 1e6)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_print(const Args& args) {
  auto fn = load_nf(args);
  if (!fn) return 1;
  if (args.has("lowered")) {
    passes::substitute_framework_apis(*fn);
    passes::collapse_packet_loops(*fn);
  }
  cir::Module mod;
  mod.name = fn->name;
  mod.functions.push_back(std::move(*fn));
  std::printf("%s", cir::print_module(mod).c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  auto base = build_analyze_request(args);
  if (!base) return 1;
  RequestRunner runner(args);

  core::Request first = *base;
  first.kind = args.has("validate") ? core::RequestKind::kValidate : core::RequestKind::kAnalyze;
  const auto first_response = runner.run(first);
  if (!first_response) return 1;
  const core::Response& a = *first_response;
  if (!a.ok) {
    std::fprintf(stderr, "analysis failed [%s]: %s\n", to_string(a.error_code), a.error.c_str());
    return 1;
  }
  // Echo the effective workload (seed included) so any run can be
  // reproduced exactly — the server resolves defaults and seeds.
  std::fprintf(stderr, "workload seed %s: %s\n", spec_value(a.workload, "seed").c_str(),
               a.workload.c_str());
  if (a.degraded) {
    std::fprintf(stderr, "NOTE: solver time budget expired; the mapping is best-effort (degraded)\n");
  }

  std::printf("NF '%s' on %s  (%llu calls substituted, %llu loops collapsed, %s mapper)\n",
              a.nf_name.c_str(), a.nic.c_str(), (unsigned long long)a.substituted,
              (unsigned long long)a.patterns, a.greedy_mapper ? "greedy" : "ILP");
  std::printf("predicted mean latency : %.0f cycles (%.2f us)\n", a.mean_latency_cycles,
              a.mean_latency_us);
  std::printf("idealized throughput   : %.0f pps (bottleneck: %s)\n", a.throughput_pps,
              a.bottleneck.c_str());
  std::printf("model hit rates        : EMEM cache %.2f, flow cache %.2f\n",
              a.emem_cache_hit_rate, a.flow_cache_hit_rate);
  std::printf("\nper-packet-type profile:\n");
  TextTable classes({"class", "share", "latency (cyc)"});
  for (const auto& cls : a.classes) {
    classes.add_row({cls.name, strf("%.1f%%", cls.fraction * 100), strf("%.0f", cls.latency_cycles)});
  }
  std::printf("%s\n%s", classes.render().c_str(), a.report.c_str());

  if (!a.breakdown_text.empty()) {
    std::printf("\npredicted latency attribution (sums to the mean):\n%s",
                a.breakdown_text.c_str());
  }

  // --validate: the response carries the per-component error attribution
  // (the accuracy ledger's single-NF view). With --max-rel-err, an error
  // beyond the threshold dumps the flight recorder and fails the run.
  if (args.has("validate")) {
    std::printf("\npredicted-vs-simulated validation (workload seed %s):\n%s",
                spec_value(a.workload, "seed").c_str(), a.validation_text.c_str());
    if (args.has("max-rel-err")) {
      const auto limit = parse_double(args.get("max-rel-err"));
      if (!limit || *limit <= 0.0) {
        std::fprintf(stderr, "--max-rel-err must be a positive fraction (e.g. 0.15)\n");
        return 2;
      }
      if (a.rel_err > *limit) {
        const std::string dump = obs::recorder().auto_dump("accuracy");
        std::fprintf(stderr, "FAIL: relative error %.2f%% exceeds --max-rel-err=%.2f%%%s%s\n",
                     a.rel_err * 100.0, *limit * 100.0,
                     dump.empty() ? "" : "; flight recorder dumped to ", dump.c_str());
        return 1;
      }
      std::printf("validation PASS: relative error %.2f%% within --max-rel-err=%.2f%%\n",
                  a.rel_err * 100.0, *limit * 100.0);
    }
  }

  // Degraded mode: when the installed fault plan (--fail-unit /
  // --derate-unit / --fault-plan) names unit faults, issue a repair
  // request with the same pipeline options and report the delta against
  // the healthy run above. Armed injection sites stay process-local.
  const auto& fplan = fault::plan();
  if (!fplan.failed_units.empty() || !fplan.derated_units.empty()) {
    fault::FaultPlan unit_plan;
    unit_plan.failed_units = fplan.failed_units;
    unit_plan.derated_units = fplan.derated_units;
    core::Request repair = *base;
    repair.kind = core::RequestKind::kRepair;
    repair.fault_plan = unit_plan.serialize();
    const auto repaired = runner.run(repair);
    if (!repaired) return 1;
    const core::Response& r = *repaired;
    if (!r.ok) {
      std::fprintf(stderr, "repair failed [%s]: %s\n", to_string(r.error_code), r.error.c_str());
      return 1;
    }
    std::printf("\ndegraded mode (unit faults applied to %s):\n", r.nic.c_str());
    std::printf("repair                 : %llu node(s) re-solved, %llu pinned%s\n",
                (unsigned long long)r.repair_displaced, (unsigned long long)r.repair_pinned,
                r.degraded ? " (best-effort: solver budget expired)" : "");
    std::printf("predicted mean latency : %.0f cycles (%.2f us, healthy %.2f us)\n",
                r.mean_latency_cycles, r.mean_latency_us, a.mean_latency_us);
    std::printf("idealized throughput   : %.0f pps (bottleneck: %s)\n", r.throughput_pps,
                r.bottleneck.c_str());
    std::printf("\n%s", r.report.c_str());
  }

  if (args.has("energy")) {
    const auto pps = parse_double(spec_value(a.workload, "pps"));
    std::printf("\nenergy: %.0f nJ/packet dynamic, %.1f W at %.0f pps (%.0f nJ/packet incl. idle)\n",
                a.energy_nj_per_packet, a.energy_watts, pps.value_or(0.0),
                a.energy_nj_per_packet_total);
  }
  if (!a.partial_text.empty()) std::printf("\n%s", a.partial_text.c_str());
  if (!a.paths_text.empty()) std::printf("\n%s", a.paths_text.c_str());

  if (args.has("sweep-pps")) {
    // Comma-separated load points, e.g. --sweep-pps=10000,60000,200000.
    std::vector<double> loads;
    std::stringstream ss(args.get("sweep-pps"));
    for (std::string item; std::getline(ss, item, ',');) {
      const double pps = std::atof(item.c_str());
      if (pps > 0) loads.push_back(pps);
    }
    if (loads.empty()) {
      std::fprintf(stderr, "sweep-pps: no valid load points\n");
      return 1;
    }
    core::Request sweep_request = *base;
    sweep_request.kind = core::RequestKind::kSweep;
    sweep_request.sweep_pps = std::move(loads);
    const auto swept = runner.run(sweep_request);
    if (!swept) return 1;
    if (!swept->ok) {
      std::fprintf(stderr, "sweep failed [%s]: %s\n", to_string(swept->error_code),
                   swept->error.c_str());
      return 1;
    }
    std::printf("\nload sensitivity (mapping fixed, workload regenerated per point):\n");
    TextTable sweep_table({"offered pps", "mean latency (us)", "worst case (cyc)", "bottleneck"});
    for (const auto& point : swept->sweep) {
      if (!point.ok) {
        sweep_table.add_row({strf("%.0f", point.pps), "error: " + point.error, "", ""});
        continue;
      }
      sweep_table.add_row({strf("%.0f", point.pps), strf("%.2f", point.mean_latency_us),
                           strf("%.0f", point.worst_case_cycles), point.bottleneck});
    }
    std::printf("%s", sweep_table.render().c_str());
  }
  return 0;
}

int cmd_simulate(const Args& args) {
  auto trace = load_trace(args);
  if (!trace) return 1;
  const std::string name = args.get("nf");

  nicsim::NicSim sim;
  std::unique_ptr<nicsim::NicProgram> program;
  if (name == "nat") {
    auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
    program = std::make_unique<nf::NatProgram>(table, !args.has("csum-sw"));
  } else if (name == "lpm") {
    auto& lpm = sim.create_lpm("routes", 10000, 4096);
    program = std::make_unique<nf::LpmProgram>(lpm, !args.has("no-flow-cache"));
  } else if (name == "firewall") {
    auto& conn = sim.create_table("conn_table", 16384, 64, nicsim::MemLevel::kImem);
    auto& rules = sim.create_table("rules", 1024, 32, nicsim::MemLevel::kCtm);
    program = std::make_unique<nf::FwProgram>(conn, rules);
  } else if (name == "dpi") {
    program = std::make_unique<nf::DpiProgram>();
  } else if (name == "heavy-hitter") {
    auto& counters = sim.create_table("counters", 16384, 32, nicsim::MemLevel::kImem);
    program = std::make_unique<nf::HhProgram>(counters);
  } else if (name == "vnf-chain") {
    auto& meters = sim.create_table("meters", 4096, 32, nicsim::MemLevel::kCtm);
    auto& stats = sim.create_table("flow_stats", 16384, 32, nicsim::MemLevel::kImem);
    program = std::make_unique<nf::VnfProgram>(meters, stats);
  } else if (name == "crypto-gw") {
    auto& sa = sim.create_table("sa_table", 4096, 64, nicsim::MemLevel::kCtm);
    program = std::make_unique<nf::CryptoGwProgram>(sa, true);
  } else if (name == "rewrite") {
    program = std::make_unique<nf::RewriteProgram>();
  } else {
    std::fprintf(stderr, "no ported implementation for '%s'\n", name.c_str());
    return 1;
  }

  const auto stats = sim.run(*program, *trace);
  std::printf("simulated '%s': %llu packets, %llu drops\n", name.c_str(),
              (unsigned long long)stats.packets, (unsigned long long)stats.drops);
  std::printf("latency  : mean %.0f  p50 %.0f  p99 %.0f cycles\n", stats.mean_latency(),
              stats.latency.percentile(0.5), stats.p99_latency());
  std::printf("queueing : mean wait %.0f cycles; achieved %.0f pps\n", stats.queue_wait.mean(),
              stats.achieved_pps);
  std::printf("caches   : EMEM hit %.2f, flow cache hit %.2f\n", stats.emem_cache_hit_rate,
              stats.flow_cache_hit_rate);
  std::printf("energy   : %.0f nJ/packet, %.1f W\n", stats.energy_nj_per_packet, stats.energy_watts);
  if (args.has("breakdown")) {
    std::printf("\nmeasured latency attribution (sums to the mean):\n%s", stats.breakdown.render().c_str());
  }
  return 0;
}

int cmd_adversarial(const Args& args) {
  auto fn = load_nf(args);
  auto nic = load_nic(args);
  if (!fn || !nic) return 1;
  auto seed = workload::parse_profile(
      args.get("workload", "tcp=0.8 flows=1000 payload=300 pps=60000 packets=5000"));
  if (!seed) {
    std::fprintf(stderr, "workload error: %s\n", seed.error().message.c_str());
    return 1;
  }
  core::Analyzer analyzer(std::move(*nic));
  const auto result = core::find_adversarial_workload(analyzer, *fn, seed.value());
  if (!result) {
    std::fprintf(stderr, "%s\n", result.error().message.c_str());
    return 1;
  }
  const auto& r = result.value();
  std::printf("seed latency  : %.0f cycles\n", r.seed_latency_cycles);
  std::printf("worst latency : %.0f cycles (%.1fx) after %zu evaluations\n", r.worst_latency_cycles,
              r.worst_latency_cycles / r.seed_latency_cycles, r.evaluations);
  std::printf("worst workload: %s\n", r.worst.serialize().c_str());
  if (!r.trajectory.empty()) {
    std::printf("ascent:\n");
    for (const auto& step : r.trajectory) {
      std::printf("  %8.0f cyc  %s\n", step.latency_cycles, step.profile.c_str());
    }
  }
  return 0;
}

int cmd_microbench() {
  const auto databook = lnic::netronome_agilio_cx().params;
  const auto extraction = microbench::extract_parameters(nicsim::netronome_config(), databook);
  std::printf("measurement log:\n%s\nextracted parameters:\n%s", extraction.report.c_str(),
              extraction.params.serialize().c_str());
  return 0;
}

int cmd_trace_gen(const Args& args) {
  auto trace = load_trace(args);
  if (!trace) return 1;
  const std::string out = args.get("out", "trace.cltr");
  if (auto status = workload::write_trace(*trace, out); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  std::printf("wrote %zu packets to %s\n", trace->size(), out.c_str());
  return 0;
}

int cmd_trace_info(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: clara trace-info <file.cltr>\n");
    return 1;
  }
  auto trace = workload::read_trace(args.positional[0]);
  if (!trace) {
    std::fprintf(stderr, "%s\n", trace.error().message.c_str());
    return 1;
  }
  const auto analysis = workload::analyze_trace(trace.value());
  std::printf("%s", analysis.render().c_str());
  std::printf("profile        : %s\n", workload::profile_from_trace(trace.value()).serialize().c_str());
  return 0;
}

int run_command(const Args& args);  // forward: profile re-enters the dispatcher

/// clara bench <scenario> — runs one benchmark scenario in-process (the
/// same models bench/perf_micro times), so `clara profile bench ...`
/// can attribute a known parallel workload. clara bench diff compares
/// two BENCH_perf.json runs and exits nonzero on regression.
int cmd_bench(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: clara bench diff <old.json> <new.json> [--threshold=0.10] [--pivot-threshold=0.05] [--band=0.02]\n"
                 "       clara bench milp_branch_and_bound | sweep_replay\n");
    return 1;
  }
  const std::string scenario = args.positional[0];

  if (scenario == "diff") {
    if (args.positional.size() != 3) {
      std::fprintf(stderr,
                   "usage: clara bench diff <old.json> <new.json> [--threshold=0.10] [--pivot-threshold=0.05] [--band=0.02]\n");
      return 2;
    }
    obs::BenchDiffOptions options;
    if (args.has("threshold")) {
      const auto t = parse_double(args.get("threshold"));
      if (!t || *t <= 0.0) {
        std::fprintf(stderr, "--threshold must be a positive fraction (e.g. 0.10)\n");
        return 2;
      }
      options.threshold = *t;
    }
    if (args.has("pivot-threshold")) {
      const auto t = parse_double(args.get("pivot-threshold"));
      if (!t || *t <= 0.0) {
        std::fprintf(stderr, "--pivot-threshold must be a positive fraction (e.g. 0.05)\n");
        return 2;
      }
      options.pivot_threshold = *t;
    }
    obs::AccuracyDiffOptions accuracy_options;
    if (args.has("band")) {
      const auto b = parse_double(args.get("band"));
      if (!b || *b <= 0.0) {
        std::fprintf(stderr, "--band must be a positive fraction of error points (e.g. 0.02)\n");
        return 2;
      }
      accuracy_options.mean_band = *b;
      accuracy_options.p95_band = 2.0 * *b;
    }
    const auto report =
        obs::diff_bench_files(args.positional[1], args.positional[2], options, accuracy_options);
    if (!report) {
      std::fprintf(stderr, "bench diff: %s\n", report.error().message.c_str());
      return 2;
    }
    std::printf("%s", report.value().render(options.threshold).c_str());
    return report.value().has_regression() ? 1 : 0;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto wall_ms = [&t0] {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  if (scenario == "milp_branch_and_bound") {
    // The market-split instance perf_micro times (see docs/performance.md).
    const auto model = ilp::make_market_split(20, 3);
    ilp::SolveOptions options;
    options.max_nodes = 10'000;
    options.jobs = parallel::jobs();
    const auto solution = ilp::solve_milp(model, options);
    std::printf("milp_branch_and_bound: objective %.3f, %zu nodes, %zu pivots, %.2f ms (jobs=%zu)\n",
                solution.objective, solution.nodes_explored, solution.pivots, wall_ms(),
                parallel::jobs());
    return 0;
  }
  if (scenario == "sweep_replay") {
    const auto eval = [](const core::SweepPoint& point, core::SweepResult& result) {
      auto profile = workload::parse_profile("tcp=0.8 flows=2000 payload=300 packets=4000").value();
      profile.pps = point.load_pps;
      profile.seed = point.seed;
      const auto trace = workload::generate_trace(profile);
      nicsim::NicSim sim;
      auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
      nf::NatProgram program(table, true);
      const auto stats = sim.run(program, trace);
      result.value = stats.mean_latency();
    };
    std::vector<double> loads;
    for (std::size_t i = 0; i < 8; ++i) loads.push_back(20'000.0 + 20'000.0 * static_cast<double>(i));
    core::SweepOptions options;
    options.jobs = parallel::jobs();
    const auto points = core::run_sweep(core::make_grid(loads, {}, 42), eval, options);
    std::printf("sweep_replay: %zu points, %.2f ms (jobs=%zu)\n", points.size(), wall_ms(),
                parallel::jobs());
    return 0;
  }
  if (scenario == "serve") {
    serve::LoadGenOptions options;
    options.connect = args.get("connect");
    options.socket_path = args.get("socket");
    if (args.has("serve-requests")) {
      const long n = std::atol(args.get("serve-requests").c_str());
      if (n < 1) {
        std::fprintf(stderr, "--serve-requests must be a positive integer\n");
        return 2;
      }
      options.requests = static_cast<std::size_t>(n);
    }
    if (args.has("serve-connections")) {
      const long n = std::atol(args.get("serve-connections").c_str());
      if (n < 1) {
        std::fprintf(stderr, "--serve-connections must be a positive integer\n");
        return 2;
      }
      options.connections = static_cast<std::size_t>(n);
    }
    if (args.has("max-inflight")) {
      const long n = std::atol(args.get("max-inflight").c_str());
      if (n < 0) {
        std::fprintf(stderr, "--max-inflight must be >= 0 (0 = unlimited)\n");
        return 2;
      }
      options.max_inflight = static_cast<std::size_t>(n);
    }
    options.chaos = args.has("chaos");
    const auto report = serve::run_loadgen(options);
    if (!report) {
      std::fprintf(stderr, "bench serve: %s\n", report.error().message.c_str());
      return 2;
    }
    std::printf("%s", report.value().render().c_str());
    // The acceptance bar: every connection survives and the daemon
    // answered work (overload rejections are typed responses, not drops).
    if (report.value().dropped_connections > 0 || report.value().ok == 0) {
      std::fprintf(stderr, "FAIL: %zu dropped connection(s), %zu ok responses\n",
                   report.value().dropped_connections, report.value().ok);
      return 1;
    }
    // The chaos contract: every request ends in exactly one well-formed
    // response or one typed client error — zero silent drops.
    const auto& r = report.value();
    if (r.dropped_requests > 0 || r.ok + r.failed + r.client_errors != r.requests) {
      std::fprintf(stderr,
                   "FAIL: request accounting broken — %zu ok + %zu failed + %zu client "
                   "error(s) != %zu requests (%zu silently dropped)\n",
                   r.ok, r.failed, r.client_errors, r.requests, r.dropped_requests);
      return 1;
    }
    return 0;
  }
  std::fprintf(stderr,
               "unknown bench scenario '%s' (diff, milp_branch_and_bound, sweep_replay, serve)\n",
               scenario.c_str());
  return 2;
}

/// clara profile <command...> — runs any other command and prints the
/// pool self-profile table for its whole run: per-lane task-body /
/// scheduling / barrier-wait attribution (docs/observability.md).
int cmd_profile(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: clara profile <command> [args...]\n");
    return 1;
  }
  Args inner = args;
  inner.command = args.positional.front();
  inner.positional.assign(args.positional.begin() + 1, args.positional.end());
  if (inner.command == "profile") {
    std::fprintf(stderr, "clara profile does not nest\n");
    return 1;
  }
  obs::ProfileScope scope;
  const int rc = run_command(inner);
  std::printf("\nself-profile (clara %s):\n%s", inner.command.c_str(),
              scope.finish().render().c_str());
  return rc;
}

void usage() {
  std::printf(
      "clara — performance clarity for SmartNIC offloading\n\n"
      "commands:\n"
      "  list-nfs | list-nics\n"
      "  print    --nf <name> [--lowered]\n"
      "  analyze  --nf <name>|--nf-file <f.cir>|--nf-p4 <f.p4nf> [--nic <profile>]\n"
      "           [--workload \"<spec>\"]\n"
      "           [--trace <f.cltr>] [--greedy] [--no-patterns] [--no-optimize]\n"
      "           [--paths] [--energy] [--partial]\n"
      "           [--validate]           run the simulator alongside the predictor and\n"
      "                                  print the per-component error attribution\n"
      "           [--max-rel-err=<x>]    with --validate: fail (and dump the flight\n"
      "                                  recorder) when relative error exceeds x\n"
      "           [--sweep-pps <a,b,c>]  predictor sensitivity sweep over offered loads\n"
      "           [--time-budget-ms=<N>] ILP deadline; on expiry the best mapping found\n"
      "                                  so far is returned, flagged degraded\n"
      "           [--fail-unit=<a,b>]    mark LNIC units/regions offline, then repair\n"
      "                                  the healthy mapping incrementally\n"
      "           [--derate-unit=<name:pct,...>]  derate units to pct%% of nominal\n"
      "           [--fault-plan=<f>]     load a fault plan (docs/robustness.md):\n"
      "                                  armed injection sites + unit faults\n"
      "  simulate --nf <name> [--workload \"<spec>\"] [--csum-sw] [--no-flow-cache]\n"
      "  adversarial --nf <name> [--nic <profile>] [--workload \"<spec>\"]\n"
      "  microbench\n"
      "  trace-gen  --workload \"<spec>\" --out <f.cltr>\n"
      "  trace-info <f.cltr>\n"
      "  profile  <command> [args...]   run any command, then print the pool\n"
      "                                 self-profile (task body / scheduling /\n"
      "                                 barrier-wait per lane)\n"
      "  bench    milp_branch_and_bound | sweep_replay   run one benchmark scenario\n"
      "  bench    serve [--connect=<sock>] [--serve-requests=<N>]\n"
      "                 [--serve-connections=<N>] [--max-inflight=<N>]\n"
      "                 [--chaos [--fault-plan=<f>]]\n"
      "                                 --chaos arms the serve fault sites (torn\n"
      "                                 writes, connection resets, accept failures,\n"
      "                                 slow reads; default seeded plan unless\n"
      "                                 --fault-plan installs one) and asserts every\n"
      "                                 request ends in one well-formed response or\n"
      "                                 one typed client error — zero silent drops\n"
      "                                 hammer a clarad daemon (spawned in-process\n"
      "                                 unless --connect) with a mixed request load;\n"
      "                                 prints client-observed latency percentiles;\n"
      "                                 exit 1 on any dropped connection\n"
      "  bench    diff <old.json> <new.json> [--threshold=0.10] [--pivot-threshold=0.05] [--band=0.02]\n"
      "                                 compare two tracked benchmark runs (perf or\n"
      "                                 accuracy schema, auto-detected); exit 1 on\n"
      "                                 regression beyond the threshold/band, 2 on error\n\n"
      "global:\n"
      "  --connect=<socket>      analyze: send requests to a running clarad over its\n"
      "                          Unix socket instead of analyzing in-process (the CLI\n"
      "                          is a thin client of the same Request/Response API —\n"
      "                          see docs/api.md \"Wire protocol\")\n"
      "  --jobs=<N>              concurrency level for parallel phases (default:\n"
      "                          CLARA_JOBS or hardware threads; 1 = fully serial)\n"
      "  --cache=on|off          content-addressed analysis cache (default: on);\n"
      "                          repeated analyses and sweep points reuse lowered\n"
      "                          IR, dataflow graphs, and ILP mappings\n"
      "  --cache-entries=<N>     cache capacity per stage, in entries (default 256)\n\n"
      "observability (any command):\n"
      "  --trace-out=<f.json>    record pipeline spans; write Chrome trace-event JSON\n"
      "                          (open at chrome://tracing) + flame summary on stderr\n"
      "  --metrics-out=<f>       dump the metrics registry (.json -> JSON, else text)\n"
      "  --metrics-format=<fmt>  json | text | prom (Prometheus text exposition);\n"
      "                          overrides the extension; prom with no --metrics-out\n"
      "                          prints to stdout\n"
      "  --flight-out=<f.json>   dump the flight recorder (Chrome trace JSON) at exit\n"
      "  --breakdown             per-packet latency attribution (analyze: predicted;\n"
      "                          simulate: measured; components sum to the mean)\n");
}

int run_command(const Args& args) {
  if (args.command == "list-nfs") return cmd_list_nfs();
  if (args.command == "list-nics") return cmd_list_nics();
  if (args.command == "print") return cmd_print(args);
  if (args.command == "analyze") return cmd_analyze(args);
  if (args.command == "simulate") return cmd_simulate(args);
  if (args.command == "adversarial") return cmd_adversarial(args);
  if (args.command == "microbench") return cmd_microbench();
  if (args.command == "trace-gen") return cmd_trace_gen(args);
  if (args.command == "trace-info") return cmd_trace_info(args);
  if (args.command == "bench") return cmd_bench(args);
  if (args.command == "profile") return cmd_profile(args);
  usage();
  return args.command.empty() || args.command == "help" || args.command == "--help" ? 0 : 1;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.error.empty()) {
    std::fprintf(stderr, "%s\n", args.error.c_str());
    return 2;
  }
  core::CacheConfig cache_config;
  if (args.has("cache")) {
    const std::string mode = args.get("cache");
    if (mode != "on" && mode != "off") {
      std::fprintf(stderr, "--cache must be 'on' or 'off' (got '%s')\n", mode.c_str());
      return 2;
    }
    cache_config.enabled = mode == "on";
  }
  if (args.has("cache-entries")) {
    const long n = std::atol(args.get("cache-entries").c_str());
    if (n < 1) {
      std::fprintf(stderr, "--cache-entries must be a positive integer\n");
      return 2;
    }
    cache_config.max_entries = static_cast<std::size_t>(n);
  }
  core::analysis_cache().configure(cache_config);
  if (!install_fault_plan(args)) return 2;
  if (args.has("jobs")) {
    const long n = std::atol(args.get("jobs").c_str());
    if (n < 1) {
      std::fprintf(stderr, "--jobs must be a positive integer\n");
      return 1;
    }
    parallel::set_jobs(static_cast<std::size_t>(n));
  }
  // Echo the effective concurrency alongside the version so any run's
  // conditions are reproducible from its stderr log.
  std::fprintf(stderr, "clara %s (%s, jobs=%zu)\n", kVersionString, build_info(),
               parallel::jobs());

  const std::string trace_out = args.get("trace-out");
  if (!trace_out.empty()) obs::tracer().set_enabled(true);

  const int rc = run_command(args);

  if (!trace_out.empty()) {
    if (write_file(trace_out, obs::tracer().to_chrome_json())) {
      std::fprintf(stderr, "wrote %zu spans to %s (open at chrome://tracing)\n",
                   obs::tracer().span_count(), trace_out.c_str());
    }
    std::fprintf(stderr, "%s", obs::tracer().flame_summary().c_str());
  }
  const std::string metrics_out = args.get("metrics-out");
  std::string metrics_format = args.get("metrics-format");
  if (!metrics_format.empty() && metrics_format != "json" && metrics_format != "text" &&
      metrics_format != "prom") {
    std::fprintf(stderr, "--metrics-format must be json, text, or prom (got '%s')\n",
                 metrics_format.c_str());
    return 2;
  }
  if (metrics_format.empty() && !metrics_out.empty()) {
    metrics_format = ends_with(metrics_out, ".json") ? "json" : "text";
  }
  if (!metrics_format.empty()) {
    const std::string rendered = metrics_format == "json"   ? obs::metrics().to_json()
                                 : metrics_format == "prom" ? obs::metrics().to_prometheus()
                                                            : obs::metrics().render_text();
    if (metrics_out.empty()) {
      std::printf("%s", rendered.c_str());
    } else if (write_file(metrics_out, rendered)) {
      std::fprintf(stderr, "wrote metrics (%s) to %s\n", metrics_format.c_str(),
                   metrics_out.c_str());
    }
  }
  const std::string flight_out = args.get("flight-out");
  if (!flight_out.empty()) {
    if (obs::recorder().dump_to_file(flight_out, "flight_out")) {
      std::fprintf(stderr, "wrote flight recorder to %s\n", flight_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", flight_out.c_str());
    }
  }
  return rc;
}
