// clara — command-line front end.
//
//   clara list-nfs                      list the built-in NF corpus
//   clara list-nics                     list LNIC profiles
//   clara print --nf <name> [--lowered] print an NF's CIR (optionally
//                                       after substitution + patterns)
//   clara analyze --nf <name>|--nf-file <f.cir> [--nic <profile>]
//                 [--workload "<spec>"] [--greedy] [--no-patterns]
//                 [--paths] [--energy] [--partial]
//   clara simulate --nf <name> [--workload "<spec>"]
//                                       run the hand-ported NF on the
//                                       simulated device
//   clara microbench                    extract device parameters
//   clara trace-gen --workload "<spec>" --out <file.cltr>
//   clara trace-info <file.cltr>
//
// Workload spec syntax: "tcp=0.8 flows=10000 payload=300 pps=60000
// packets=50000 zipf=1.0 arrivals=deterministic seed=42".
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cir/printer.hpp"
#include "cir/verify.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/version.hpp"
#include "obs/accuracy.hpp"
#include "obs/benchdiff.hpp"
#include "obs/breakdown.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "ilp/instances.hpp"
#include "ilp/solver.hpp"
#include "core/cache.hpp"
#include "core/clara.hpp"
#include "core/adversarial.hpp"
#include "core/energy.hpp"
#include "core/partial.hpp"
#include "core/sweep.hpp"
#include "fault/fault.hpp"
#include "frontend/p4lite.hpp"
#include "microbench/microbench.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "passes/api_subst.hpp"
#include "passes/dataflow.hpp"
#include "passes/patterns.hpp"
#include "passes/symexec.hpp"
#include "workload/analysis.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace clara;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
  /// Non-empty when parsing rejected an option (unknown key).
  std::string error;

  [[nodiscard]] bool has(const std::string& key) const { return options.count(key) > 0; }
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = {}) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

/// Every option key any command accepts. parse_args rejects keys outside
/// this list — a typo like --sweep-psp used to be silently ignored and
/// the run would quietly do less than asked.
const std::vector<std::string>& known_option_keys() {
  static const std::vector<std::string> kKeys = {
      "band", "breakdown", "cache", "cache-entries", "csum-sw", "derate-unit", "energy",
      "fail-unit", "fault-plan", "flight-out", "greedy", "jobs", "lowered",
      "max-rel-err", "metrics-format", "metrics-out", "nf", "nf-file", "nf-p4", "nic",
      "no-flow-cache", "no-optimize", "no-patterns", "out", "partial", "paths", "pivot-threshold",
      "sweep-pps", "threshold", "time-budget-ms", "trace", "trace-out", "validate", "workload"};
  return kKeys;
}

/// True for options that take no value (bare --flag form).
bool is_bare_flag(const std::string& key) {
  return key == "lowered" || key == "greedy" || key == "no-patterns" || key == "no-optimize" ||
         key == "paths" || key == "energy" || key == "partial" || key == "csum-sw" ||
         key == "no-flow-cache" || key == "breakdown" || key == "validate";
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      args.command = "help";
    } else if (starts_with(token, "--")) {
      std::string key = token.substr(2);
      std::string value;
      bool has_value = false;
      if (const auto eq = key.find('='); eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
        has_value = true;
      }
      const auto& known = known_option_keys();
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        args.error = strf("unknown option --%s", key.c_str());
        const std::string suggestion = closest_match(key, known);
        if (!suggestion.empty()) args.error += strf(" (did you mean --%s?)", suggestion.c_str());
        args.error += "\nvalid options:";
        for (const auto& k : known) args.error += " --" + k;
        return args;
      }
      if (has_value) {
        args.options[key] = std::move(value);
      } else if (is_bare_flag(key)) {
        args.options[key] = "1";
      } else if (i + 1 < argc) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "";
      }
    } else if (args.command.empty()) {
      args.command = std::move(token);
    } else {
      args.positional.push_back(std::move(token));
    }
  }
  return args;
}

/// Builds the process-wide fault plan from --fault-plan / --fail-unit /
/// --derate-unit and installs it before any command runs. Returns false
/// after reporting the error on stderr.
bool install_fault_plan(const Args& args) {
  fault::FaultPlan plan;
  if (args.has("fault-plan")) {
    std::ifstream in(args.get("fault-plan"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.get("fault-plan").c_str());
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = fault::FaultPlan::parse(buffer.str());
    if (!parsed) {
      std::fprintf(stderr, "fault-plan error: %s\n", parsed.error().message.c_str());
      return false;
    }
    plan = std::move(parsed).value();
  }
  for (const auto& item : split(args.get("fail-unit"), ',')) {
    const auto name = trim(item);
    if (!name.empty()) plan.failed_units.emplace_back(name);
  }
  for (const auto& item : split(args.get("derate-unit"), ',')) {
    const auto spec = trim(item);
    if (spec.empty()) continue;
    const auto colon = spec.find(':');
    const auto pct = colon == std::string_view::npos
                         ? std::nullopt
                         : parse_double(spec.substr(colon + 1));
    if (!pct || *pct <= 0.0 || *pct > 100.0) {
      std::fprintf(stderr, "--derate-unit expects name:pct with pct in (0,100], got '%s'\n",
                   std::string(spec).c_str());
      return false;
    }
    plan.derated_units.emplace_back(std::string(spec.substr(0, colon)), *pct);
  }
  if (!plan.empty()) fault::set_plan(std::move(plan));
  return true;
}

// --- NF registry -------------------------------------------------------------

struct NfEntry {
  const char* name;
  const char* description;
  std::function<cir::Function()> build;
};

const std::vector<NfEntry>& nf_registry() {
  static const std::vector<NfEntry> kRegistry = {
      {"lpm", "longest-prefix match, 10k rules, flow cache on", [] { return nf::build_lpm_nf(); }},
      {"lpm-nocache", "LPM without the flow cache",
       [] { return nf::build_lpm_nf({.rules = 10000, .use_flow_cache = false}); }},
      {"nat", "network address translation with per-flow table", [] { return nf::build_nat_nf(); }},
      {"firewall", "stateful firewall with rule table", [] { return nf::build_fw_nf(); }},
      {"dpi", "deep packet inspection (explicit byte-scan loop)", [] { return nf::build_dpi_nf(); }},
      {"heavy-hitter", "per-flow counters with threshold", [] { return nf::build_hh_nf(); }},
      {"meter", "token-bucket metering", [] { return nf::build_meter_nf(); }},
      {"flow-stats", "per-flow packet/byte statistics", [] { return nf::build_flowstats_nf(); }},
      {"rewrite", "header rewrite (minimal NF)", [] { return nf::build_rewrite_nf(); }},
      {"vnf-chain", "DPI -> meter -> header mods -> flow stats", [] { return nf::build_vnf_chain(); }},
      {"crypto-gw", "IPsec-style gateway (crypto engine)", [] { return nf::build_crypto_gw_nf(); }},
      {"csum-loop", "checksum as an accumulation loop (idiom demo)", [] { return nf::build_csum_loop_nf(); }},
      {"rate-estimator", "EWMA rate estimation (floating point)", [] { return nf::build_rate_estimator_nf(); }},
  };
  return kRegistry;
}

std::optional<cir::Function> load_nf(const Args& args) {
  if (args.has("nf-p4")) {
    std::ifstream in(args.get("nf-p4"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.get("nf-p4").c_str());
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto fn = frontend::compile_p4lite(buffer.str());
    if (!fn) {
      std::fprintf(stderr, "p4lite error: %s\n", fn.error().message.c_str());
      return std::nullopt;
    }
    return std::move(fn).value();
  }
  if (args.has("nf-file")) {
    std::ifstream in(args.get("nf-file"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.get("nf-file").c_str());
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto mod = cir::parse_module(buffer.str());
    if (!mod) {
      std::fprintf(stderr, "parse error: %s\n", mod.error().message.c_str());
      return std::nullopt;
    }
    if (auto status = cir::verify(mod.value()); !status) {
      std::fprintf(stderr, "verification error: %s\n", status.error().message.c_str());
      return std::nullopt;
    }
    if (mod.value().functions.empty()) {
      std::fprintf(stderr, "module has no functions\n");
      return std::nullopt;
    }
    return mod.value().functions.front();
  }
  const std::string name = args.get("nf");
  for (const auto& entry : nf_registry()) {
    if (name == entry.name) return entry.build();
  }
  std::fprintf(stderr, "unknown NF '%s' (try: clara list-nfs)\n", name.c_str());
  return std::nullopt;
}

std::optional<lnic::NicProfile> load_nic(const Args& args) {
  const std::string name = args.get("nic", "netronome-agilio-cx");
  for (auto& profile : lnic::all_profiles()) {
    if (profile.name == name) return std::move(profile);
  }
  std::fprintf(stderr, "unknown NIC '%s' (try: clara list-nics)\n", name.c_str());
  return std::nullopt;
}

std::optional<workload::Trace> load_trace(const Args& args) {
  if (args.has("trace")) {
    auto trace = workload::read_trace(args.get("trace"));
    if (!trace) {
      std::fprintf(stderr, "trace error: %s\n", trace.error().message.c_str());
      return std::nullopt;
    }
    return std::move(trace).value();
  }
  const std::string spec = args.get("workload", "tcp=0.8 flows=10000 payload=300 pps=60000 packets=20000");
  auto profile = workload::parse_profile(spec);
  if (!profile) {
    std::fprintf(stderr, "workload error: %s\n", profile.error().message.c_str());
    return std::nullopt;
  }
  // Echo the effective seed so any run can be reproduced exactly.
  std::fprintf(stderr, "workload seed %llu: %s\n", (unsigned long long)profile.value().seed,
               profile.value().serialize().c_str());
  return workload::generate_trace(profile.value());
}

// --- Commands -----------------------------------------------------------------

int cmd_list_nfs() {
  TextTable table({"name", "description"});
  for (const auto& entry : nf_registry()) table.add_row({entry.name, entry.description});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_list_nics() {
  TextTable table({"name", "compute units", "memory regions", "clock"});
  for (const auto& profile : lnic::all_profiles()) {
    table.add_row({profile.name, strf("%zu", profile.graph.compute_units().size()),
                   strf("%zu", profile.graph.memory_regions().size()),
                   strf("%.1f MHz", profile.params.scalar(lnic::keys::kClockHz) / 1e6)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_print(const Args& args) {
  auto fn = load_nf(args);
  if (!fn) return 1;
  if (args.has("lowered")) {
    passes::substitute_framework_apis(*fn);
    passes::collapse_packet_loops(*fn);
  }
  cir::Module mod;
  mod.name = fn->name;
  mod.functions.push_back(std::move(*fn));
  std::printf("%s", cir::print_module(mod).c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  auto fn = load_nf(args);
  auto nic = load_nic(args);
  auto trace = load_trace(args);
  if (!fn || !nic || !trace) return 1;

  core::AnalyzeOptions options;
  if (args.has("greedy")) options.stages.set(core::PipelineStages::kIlp, false);
  if (args.has("no-patterns")) options.stages.set(core::PipelineStages::kPatterns, false);
  if (args.has("no-optimize")) options.stages.set(core::PipelineStages::kOptimize, false);
  if (args.has("time-budget-ms")) {
    options.map.time_budget_ms = std::atof(args.get("time-budget-ms").c_str());
  }

  core::Analyzer analyzer(std::move(*nic));
  auto analysis = analyzer.analyze(*fn, *trace, options);
  if (!analysis) {
    std::fprintf(stderr, "analysis failed [%s]: %s\n", to_string(analysis.error().code),
                 analysis.error().message.c_str());
    return 1;
  }
  const auto& a = analysis.value();
  if (a.degraded) {
    std::fprintf(stderr, "NOTE: solver time budget expired; the mapping is best-effort (degraded)\n");
  }

  std::printf("NF '%s' on %s  (%zu calls substituted, %zu loops collapsed, %s mapper)\n",
              fn->name.c_str(), analyzer.profile().name.c_str(), a.substitution.substituted,
              a.patterns.total(), a.mapping.greedy ? "greedy" : "ILP");
  std::printf("predicted mean latency : %.0f cycles (%.2f us)\n", a.prediction.mean_latency_cycles,
              a.prediction.mean_latency_us);
  std::printf("idealized throughput   : %.0f pps (bottleneck: %s)\n", a.prediction.throughput_pps,
              a.prediction.bottleneck.c_str());
  std::printf("model hit rates        : EMEM cache %.2f, flow cache %.2f\n",
              a.prediction.emem_cache_hit_rate, a.prediction.flow_cache_hit_rate);
  std::printf("\nper-packet-type profile:\n");
  TextTable classes({"class", "share", "latency (cyc)"});
  for (const auto& cls : a.prediction.classes) {
    classes.add_row({cls.name, strf("%.1f%%", cls.fraction * 100), strf("%.0f", cls.latency_cycles)});
  }
  std::printf("%s\n%s", classes.render().c_str(), a.report.c_str());

  if (args.has("breakdown")) {
    std::printf("\npredicted latency attribution (sums to the mean):\n%s",
                obs::render_breakdown(a.prediction.breakdown).c_str());
  }

  // --validate: run the simulator alongside the predictor on the same
  // trace and print the per-component error attribution (the accuracy
  // ledger's single-NF view). With --max-rel-err, an error beyond the
  // threshold dumps the flight recorder and fails the run.
  if (args.has("validate")) {
    obs::ValidationScenario scenario;
    scenario.nf = args.get("nf");
    scenario.variant = "cli";
    scenario.workload = trace->profile.serialize();
    // The registry's lpm variants carry their knobs in the name; mirror
    // them so the ported program matches what load_nf built.
    if (scenario.nf == "lpm") {
      scenario.lpm_rules = 10'000;
      scenario.lpm_flow_cache = true;
    } else if (scenario.nf == "lpm-nocache") {
      scenario.nf = "lpm";
      scenario.lpm_rules = 10'000;
      scenario.lpm_flow_cache = false;
    }
    auto validated = obs::validate_prediction(analyzer, scenario, a, *trace);
    if (!validated) {
      std::fprintf(stderr, "validate: %s\n", validated.error().message.c_str());
      return 1;
    }
    const auto& v = validated.value();
    std::printf("\npredicted-vs-simulated validation (workload seed %llu):\n%s",
                (unsigned long long)trace->profile.seed, obs::render_validation(v).c_str());
    if (args.has("max-rel-err")) {
      const auto limit = parse_double(args.get("max-rel-err"));
      if (!limit || *limit <= 0.0) {
        std::fprintf(stderr, "--max-rel-err must be a positive fraction (e.g. 0.15)\n");
        return 2;
      }
      if (v.rel_err > *limit) {
        const std::string dump = obs::recorder().auto_dump("accuracy");
        std::fprintf(stderr, "FAIL: relative error %.2f%% exceeds --max-rel-err=%.2f%%%s%s\n",
                     v.rel_err * 100.0, *limit * 100.0,
                     dump.empty() ? "" : "; flight recorder dumped to ", dump.c_str());
        return 1;
      }
      std::printf("validation PASS: relative error %.2f%% within --max-rel-err=%.2f%%\n",
                  v.rel_err * 100.0, *limit * 100.0);
    }
  }

  // Degraded mode: when the installed fault plan (--fail-unit /
  // --derate-unit / --fault-plan) names unit faults, re-analyze on the
  // faulted profile via incremental repair and report the delta against
  // the healthy run above.
  const auto& fplan = fault::plan();
  if (!fplan.failed_units.empty() || !fplan.derated_units.empty()) {
    auto faulted_nic = load_nic(args);
    if (!faulted_nic) return 1;
    if (auto applied = fault::apply_to_profile(fplan, *faulted_nic); !applied) {
      std::fprintf(stderr, "fault plan: %s\n", applied.error().message.c_str());
      return 1;
    }
    core::Analyzer degraded_analyzer(std::move(*faulted_nic));
    auto repaired = degraded_analyzer.repair(*fn, *trace, a, options);
    if (!repaired) {
      std::fprintf(stderr, "repair failed [%s]: %s\n", to_string(repaired.error().code),
                   repaired.error().message.c_str());
      return 1;
    }
    const auto& r = repaired.value();
    std::printf("\ndegraded mode (unit faults applied to %s):\n", analyzer.profile().name.c_str());
    std::printf("repair                 : %zu node(s) re-solved, %zu pinned%s\n",
                r.mapping.repair_displaced, a.mapping.node_pool.size() - r.mapping.repair_displaced,
                r.degraded ? " (best-effort: solver budget expired)" : "");
    std::printf("predicted mean latency : %.0f cycles (%.2f us, healthy %.2f us)\n",
                r.prediction.mean_latency_cycles, r.prediction.mean_latency_us,
                a.prediction.mean_latency_us);
    std::printf("idealized throughput   : %.0f pps (bottleneck: %s)\n", r.prediction.throughput_pps,
                r.prediction.bottleneck.c_str());
    std::printf("\n%s", r.report.c_str());
  }

  // Re-derive the graph/mapping context for the optional extras.
  const auto hints = core::hints_from_trace(*trace, analyzer.profile());
  const auto graph = passes::DataflowGraph::build(a.lowered, hints);
  const mapping::Mapper mapper(analyzer.profile());

  if (args.has("energy")) {
    const auto energy = core::predict_energy(a.lowered, graph, a.mapping, mapper, *trace);
    std::printf("\nenergy: %.0f nJ/packet dynamic, %.1f W at %.0f pps (%.0f nJ/packet incl. idle)\n",
                energy.nj_per_packet, energy.watts_at_rate, trace->profile.pps,
                energy.nj_per_packet_total);
  }
  if (args.has("partial")) {
    const auto partial = core::plan_partial_offload(a.lowered, graph, a.mapping, mapper, *trace);
    if (partial) {
      std::printf("\npartial-offload plans:\n%s", core::describe_partial(partial.value(), graph).c_str());
    }
  }
  if (args.has("paths")) {
    const auto paths = passes::enumerate_paths(a.lowered);
    std::printf("\nNF behaviours (%zu paths%s):\n", paths.paths.size(),
                paths.complete ? "" : ", truncated");
    for (const auto& path : paths.paths) std::printf("  %s\n", path.describe(a.lowered).c_str());
  }
  if (args.has("sweep-pps")) {
    // Comma-separated load points, e.g. --sweep-pps=10000,60000,200000.
    std::vector<double> loads;
    std::stringstream ss(args.get("sweep-pps"));
    for (std::string item; std::getline(ss, item, ',');) {
      const double pps = std::atof(item.c_str());
      if (pps > 0) loads.push_back(pps);
    }
    if (loads.empty()) {
      std::fprintf(stderr, "sweep-pps: no valid load points\n");
      return 1;
    }
    const auto sweep = core::predict_load_sweep(analyzer, a, trace->profile, loads, options);
    std::printf("\nload sensitivity (mapping fixed, workload regenerated per point):\n");
    TextTable sweep_table({"offered pps", "mean latency (us)", "worst case (cyc)", "bottleneck"});
    for (const auto& point : sweep) {
      if (!point.ok) {
        sweep_table.add_row({strf("%.0f", point.pps), "error: " + point.error, "", ""});
        continue;
      }
      sweep_table.add_row({strf("%.0f", point.pps), strf("%.2f", point.prediction.mean_latency_us),
                           strf("%.0f", point.prediction.worst_case_cycles),
                           point.prediction.bottleneck});
    }
    std::printf("%s", sweep_table.render().c_str());
  }
  return 0;
}

int cmd_simulate(const Args& args) {
  auto trace = load_trace(args);
  if (!trace) return 1;
  const std::string name = args.get("nf");

  nicsim::NicSim sim;
  std::unique_ptr<nicsim::NicProgram> program;
  if (name == "nat") {
    auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
    program = std::make_unique<nf::NatProgram>(table, !args.has("csum-sw"));
  } else if (name == "lpm") {
    auto& lpm = sim.create_lpm("routes", 10000, 4096);
    program = std::make_unique<nf::LpmProgram>(lpm, !args.has("no-flow-cache"));
  } else if (name == "firewall") {
    auto& conn = sim.create_table("conn_table", 16384, 64, nicsim::MemLevel::kImem);
    auto& rules = sim.create_table("rules", 1024, 32, nicsim::MemLevel::kCtm);
    program = std::make_unique<nf::FwProgram>(conn, rules);
  } else if (name == "dpi") {
    program = std::make_unique<nf::DpiProgram>();
  } else if (name == "heavy-hitter") {
    auto& counters = sim.create_table("counters", 16384, 32, nicsim::MemLevel::kImem);
    program = std::make_unique<nf::HhProgram>(counters);
  } else if (name == "vnf-chain") {
    auto& meters = sim.create_table("meters", 4096, 32, nicsim::MemLevel::kCtm);
    auto& stats = sim.create_table("flow_stats", 16384, 32, nicsim::MemLevel::kImem);
    program = std::make_unique<nf::VnfProgram>(meters, stats);
  } else if (name == "crypto-gw") {
    auto& sa = sim.create_table("sa_table", 4096, 64, nicsim::MemLevel::kCtm);
    program = std::make_unique<nf::CryptoGwProgram>(sa, true);
  } else if (name == "rewrite") {
    program = std::make_unique<nf::RewriteProgram>();
  } else {
    std::fprintf(stderr, "no ported implementation for '%s'\n", name.c_str());
    return 1;
  }

  const auto stats = sim.run(*program, *trace);
  std::printf("simulated '%s': %llu packets, %llu drops\n", name.c_str(),
              (unsigned long long)stats.packets, (unsigned long long)stats.drops);
  std::printf("latency  : mean %.0f  p50 %.0f  p99 %.0f cycles\n", stats.mean_latency(),
              stats.latency.percentile(0.5), stats.p99_latency());
  std::printf("queueing : mean wait %.0f cycles; achieved %.0f pps\n", stats.queue_wait.mean(),
              stats.achieved_pps);
  std::printf("caches   : EMEM hit %.2f, flow cache hit %.2f\n", stats.emem_cache_hit_rate,
              stats.flow_cache_hit_rate);
  std::printf("energy   : %.0f nJ/packet, %.1f W\n", stats.energy_nj_per_packet, stats.energy_watts);
  if (args.has("breakdown")) {
    std::printf("\nmeasured latency attribution (sums to the mean):\n%s", stats.breakdown.render().c_str());
  }
  return 0;
}

int cmd_adversarial(const Args& args) {
  auto fn = load_nf(args);
  auto nic = load_nic(args);
  if (!fn || !nic) return 1;
  auto seed = workload::parse_profile(
      args.get("workload", "tcp=0.8 flows=1000 payload=300 pps=60000 packets=5000"));
  if (!seed) {
    std::fprintf(stderr, "workload error: %s\n", seed.error().message.c_str());
    return 1;
  }
  core::Analyzer analyzer(std::move(*nic));
  const auto result = core::find_adversarial_workload(analyzer, *fn, seed.value());
  if (!result) {
    std::fprintf(stderr, "%s\n", result.error().message.c_str());
    return 1;
  }
  const auto& r = result.value();
  std::printf("seed latency  : %.0f cycles\n", r.seed_latency_cycles);
  std::printf("worst latency : %.0f cycles (%.1fx) after %zu evaluations\n", r.worst_latency_cycles,
              r.worst_latency_cycles / r.seed_latency_cycles, r.evaluations);
  std::printf("worst workload: %s\n", r.worst.serialize().c_str());
  if (!r.trajectory.empty()) {
    std::printf("ascent:\n");
    for (const auto& step : r.trajectory) {
      std::printf("  %8.0f cyc  %s\n", step.latency_cycles, step.profile.c_str());
    }
  }
  return 0;
}

int cmd_microbench() {
  const auto databook = lnic::netronome_agilio_cx().params;
  const auto extraction = microbench::extract_parameters(nicsim::netronome_config(), databook);
  std::printf("measurement log:\n%s\nextracted parameters:\n%s", extraction.report.c_str(),
              extraction.params.serialize().c_str());
  return 0;
}

int cmd_trace_gen(const Args& args) {
  auto trace = load_trace(args);
  if (!trace) return 1;
  const std::string out = args.get("out", "trace.cltr");
  if (auto status = workload::write_trace(*trace, out); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  std::printf("wrote %zu packets to %s\n", trace->size(), out.c_str());
  return 0;
}

int cmd_trace_info(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: clara trace-info <file.cltr>\n");
    return 1;
  }
  auto trace = workload::read_trace(args.positional[0]);
  if (!trace) {
    std::fprintf(stderr, "%s\n", trace.error().message.c_str());
    return 1;
  }
  const auto analysis = workload::analyze_trace(trace.value());
  std::printf("%s", analysis.render().c_str());
  std::printf("profile        : %s\n", workload::profile_from_trace(trace.value()).serialize().c_str());
  return 0;
}

int run_command(const Args& args);  // forward: profile re-enters the dispatcher

/// clara bench <scenario> — runs one benchmark scenario in-process (the
/// same models bench/perf_micro times), so `clara profile bench ...`
/// can attribute a known parallel workload. clara bench diff compares
/// two BENCH_perf.json runs and exits nonzero on regression.
int cmd_bench(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: clara bench diff <old.json> <new.json> [--threshold=0.10] [--pivot-threshold=0.05] [--band=0.02]\n"
                 "       clara bench milp_branch_and_bound | sweep_replay\n");
    return 1;
  }
  const std::string scenario = args.positional[0];

  if (scenario == "diff") {
    if (args.positional.size() != 3) {
      std::fprintf(stderr,
                   "usage: clara bench diff <old.json> <new.json> [--threshold=0.10] [--pivot-threshold=0.05] [--band=0.02]\n");
      return 2;
    }
    obs::BenchDiffOptions options;
    if (args.has("threshold")) {
      const auto t = parse_double(args.get("threshold"));
      if (!t || *t <= 0.0) {
        std::fprintf(stderr, "--threshold must be a positive fraction (e.g. 0.10)\n");
        return 2;
      }
      options.threshold = *t;
    }
    if (args.has("pivot-threshold")) {
      const auto t = parse_double(args.get("pivot-threshold"));
      if (!t || *t <= 0.0) {
        std::fprintf(stderr, "--pivot-threshold must be a positive fraction (e.g. 0.05)\n");
        return 2;
      }
      options.pivot_threshold = *t;
    }
    obs::AccuracyDiffOptions accuracy_options;
    if (args.has("band")) {
      const auto b = parse_double(args.get("band"));
      if (!b || *b <= 0.0) {
        std::fprintf(stderr, "--band must be a positive fraction of error points (e.g. 0.02)\n");
        return 2;
      }
      accuracy_options.mean_band = *b;
      accuracy_options.p95_band = 2.0 * *b;
    }
    const auto report =
        obs::diff_bench_files(args.positional[1], args.positional[2], options, accuracy_options);
    if (!report) {
      std::fprintf(stderr, "bench diff: %s\n", report.error().message.c_str());
      return 2;
    }
    std::printf("%s", report.value().render(options.threshold).c_str());
    return report.value().has_regression() ? 1 : 0;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto wall_ms = [&t0] {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  if (scenario == "milp_branch_and_bound") {
    // The market-split instance perf_micro times (see docs/performance.md).
    const auto model = ilp::make_market_split(20, 3);
    ilp::SolveOptions options;
    options.max_nodes = 10'000;
    options.jobs = parallel::jobs();
    const auto solution = ilp::solve_milp(model, options);
    std::printf("milp_branch_and_bound: objective %.3f, %zu nodes, %zu pivots, %.2f ms (jobs=%zu)\n",
                solution.objective, solution.nodes_explored, solution.pivots, wall_ms(),
                parallel::jobs());
    return 0;
  }
  if (scenario == "sweep_replay") {
    const auto eval = [](const core::SweepPoint& point, core::SweepResult& result) {
      auto profile = workload::parse_profile("tcp=0.8 flows=2000 payload=300 packets=4000").value();
      profile.pps = point.load_pps;
      profile.seed = point.seed;
      const auto trace = workload::generate_trace(profile);
      nicsim::NicSim sim;
      auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
      nf::NatProgram program(table, true);
      const auto stats = sim.run(program, trace);
      result.value = stats.mean_latency();
    };
    std::vector<double> loads;
    for (std::size_t i = 0; i < 8; ++i) loads.push_back(20'000.0 + 20'000.0 * static_cast<double>(i));
    core::SweepOptions options;
    options.jobs = parallel::jobs();
    const auto points = core::run_sweep(core::make_grid(loads, {}, 42), eval, options);
    std::printf("sweep_replay: %zu points, %.2f ms (jobs=%zu)\n", points.size(), wall_ms(),
                parallel::jobs());
    return 0;
  }
  std::fprintf(stderr, "unknown bench scenario '%s' (diff, milp_branch_and_bound, sweep_replay)\n",
               scenario.c_str());
  return 2;
}

/// clara profile <command...> — runs any other command and prints the
/// pool self-profile table for its whole run: per-lane task-body /
/// scheduling / barrier-wait attribution (docs/observability.md).
int cmd_profile(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: clara profile <command> [args...]\n");
    return 1;
  }
  Args inner = args;
  inner.command = args.positional.front();
  inner.positional.assign(args.positional.begin() + 1, args.positional.end());
  if (inner.command == "profile") {
    std::fprintf(stderr, "clara profile does not nest\n");
    return 1;
  }
  obs::ProfileScope scope;
  const int rc = run_command(inner);
  std::printf("\nself-profile (clara %s):\n%s", inner.command.c_str(),
              scope.finish().render().c_str());
  return rc;
}

void usage() {
  std::printf(
      "clara — performance clarity for SmartNIC offloading\n\n"
      "commands:\n"
      "  list-nfs | list-nics\n"
      "  print    --nf <name> [--lowered]\n"
      "  analyze  --nf <name>|--nf-file <f.cir>|--nf-p4 <f.p4nf> [--nic <profile>]\n"
      "           [--workload \"<spec>\"]\n"
      "           [--trace <f.cltr>] [--greedy] [--no-patterns] [--no-optimize]\n"
      "           [--paths] [--energy] [--partial]\n"
      "           [--validate]           run the simulator alongside the predictor and\n"
      "                                  print the per-component error attribution\n"
      "           [--max-rel-err=<x>]    with --validate: fail (and dump the flight\n"
      "                                  recorder) when relative error exceeds x\n"
      "           [--sweep-pps <a,b,c>]  predictor sensitivity sweep over offered loads\n"
      "           [--time-budget-ms=<N>] ILP deadline; on expiry the best mapping found\n"
      "                                  so far is returned, flagged degraded\n"
      "           [--fail-unit=<a,b>]    mark LNIC units/regions offline, then repair\n"
      "                                  the healthy mapping incrementally\n"
      "           [--derate-unit=<name:pct,...>]  derate units to pct%% of nominal\n"
      "           [--fault-plan=<f>]     load a fault plan (docs/robustness.md):\n"
      "                                  armed injection sites + unit faults\n"
      "  simulate --nf <name> [--workload \"<spec>\"] [--csum-sw] [--no-flow-cache]\n"
      "  adversarial --nf <name> [--nic <profile>] [--workload \"<spec>\"]\n"
      "  microbench\n"
      "  trace-gen  --workload \"<spec>\" --out <f.cltr>\n"
      "  trace-info <f.cltr>\n"
      "  profile  <command> [args...]   run any command, then print the pool\n"
      "                                 self-profile (task body / scheduling /\n"
      "                                 barrier-wait per lane)\n"
      "  bench    milp_branch_and_bound | sweep_replay   run one benchmark scenario\n"
      "  bench    diff <old.json> <new.json> [--threshold=0.10] [--pivot-threshold=0.05] [--band=0.02]\n"
      "                                 compare two tracked benchmark runs (perf or\n"
      "                                 accuracy schema, auto-detected); exit 1 on\n"
      "                                 regression beyond the threshold/band, 2 on error\n\n"
      "global:\n"
      "  --jobs=<N>              concurrency level for parallel phases (default:\n"
      "                          CLARA_JOBS or hardware threads; 1 = fully serial)\n"
      "  --cache=on|off          content-addressed analysis cache (default: on);\n"
      "                          repeated analyses and sweep points reuse lowered\n"
      "                          IR, dataflow graphs, and ILP mappings\n"
      "  --cache-entries=<N>     cache capacity per stage, in entries (default 256)\n\n"
      "observability (any command):\n"
      "  --trace-out=<f.json>    record pipeline spans; write Chrome trace-event JSON\n"
      "                          (open at chrome://tracing) + flame summary on stderr\n"
      "  --metrics-out=<f>       dump the metrics registry (.json -> JSON, else text)\n"
      "  --metrics-format=<fmt>  json | text | prom (Prometheus text exposition);\n"
      "                          overrides the extension; prom with no --metrics-out\n"
      "                          prints to stdout\n"
      "  --flight-out=<f.json>   dump the flight recorder (Chrome trace JSON) at exit\n"
      "  --breakdown             per-packet latency attribution (analyze: predicted;\n"
      "                          simulate: measured; components sum to the mean)\n");
}

int run_command(const Args& args) {
  if (args.command == "list-nfs") return cmd_list_nfs();
  if (args.command == "list-nics") return cmd_list_nics();
  if (args.command == "print") return cmd_print(args);
  if (args.command == "analyze") return cmd_analyze(args);
  if (args.command == "simulate") return cmd_simulate(args);
  if (args.command == "adversarial") return cmd_adversarial(args);
  if (args.command == "microbench") return cmd_microbench();
  if (args.command == "trace-gen") return cmd_trace_gen(args);
  if (args.command == "trace-info") return cmd_trace_info(args);
  if (args.command == "bench") return cmd_bench(args);
  if (args.command == "profile") return cmd_profile(args);
  usage();
  return args.command.empty() || args.command == "help" || args.command == "--help" ? 0 : 1;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.error.empty()) {
    std::fprintf(stderr, "%s\n", args.error.c_str());
    return 2;
  }
  core::CacheConfig cache_config;
  if (args.has("cache")) {
    const std::string mode = args.get("cache");
    if (mode != "on" && mode != "off") {
      std::fprintf(stderr, "--cache must be 'on' or 'off' (got '%s')\n", mode.c_str());
      return 2;
    }
    cache_config.enabled = mode == "on";
  }
  if (args.has("cache-entries")) {
    const long n = std::atol(args.get("cache-entries").c_str());
    if (n < 1) {
      std::fprintf(stderr, "--cache-entries must be a positive integer\n");
      return 2;
    }
    cache_config.max_entries = static_cast<std::size_t>(n);
  }
  core::analysis_cache().configure(cache_config);
  if (!install_fault_plan(args)) return 2;
  if (args.has("jobs")) {
    const long n = std::atol(args.get("jobs").c_str());
    if (n < 1) {
      std::fprintf(stderr, "--jobs must be a positive integer\n");
      return 1;
    }
    parallel::set_jobs(static_cast<std::size_t>(n));
  }
  // Echo the effective concurrency alongside the version so any run's
  // conditions are reproducible from its stderr log.
  std::fprintf(stderr, "clara %s (%s, jobs=%zu)\n", kVersionString, build_info(),
               parallel::jobs());

  const std::string trace_out = args.get("trace-out");
  if (!trace_out.empty()) obs::tracer().set_enabled(true);

  const int rc = run_command(args);

  if (!trace_out.empty()) {
    if (write_file(trace_out, obs::tracer().to_chrome_json())) {
      std::fprintf(stderr, "wrote %zu spans to %s (open at chrome://tracing)\n",
                   obs::tracer().span_count(), trace_out.c_str());
    }
    std::fprintf(stderr, "%s", obs::tracer().flame_summary().c_str());
  }
  const std::string metrics_out = args.get("metrics-out");
  std::string metrics_format = args.get("metrics-format");
  if (!metrics_format.empty() && metrics_format != "json" && metrics_format != "text" &&
      metrics_format != "prom") {
    std::fprintf(stderr, "--metrics-format must be json, text, or prom (got '%s')\n",
                 metrics_format.c_str());
    return 2;
  }
  if (metrics_format.empty() && !metrics_out.empty()) {
    metrics_format = ends_with(metrics_out, ".json") ? "json" : "text";
  }
  if (!metrics_format.empty()) {
    const std::string rendered = metrics_format == "json"   ? obs::metrics().to_json()
                                 : metrics_format == "prom" ? obs::metrics().to_prometheus()
                                                            : obs::metrics().render_text();
    if (metrics_out.empty()) {
      std::printf("%s", rendered.c_str());
    } else if (write_file(metrics_out, rendered)) {
      std::fprintf(stderr, "wrote metrics (%s) to %s\n", metrics_format.c_str(),
                   metrics_out.c_str());
    }
  }
  const std::string flight_out = args.get("flight-out");
  if (!flight_out.empty()) {
    if (obs::recorder().dump_to_file(flight_out, "flight_out")) {
      std::fprintf(stderr, "wrote flight recorder to %s\n", flight_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", flight_out.c_str());
    }
  }
  return rc;
}
