#include "microbench/microbench.hpp"

#include <cmath>
#include <functional>

#include "common/stats.hpp"
#include "common/strings.hpp"

namespace clara::microbench {

using nicsim::MemLevel;
using nicsim::NicApi;
using nicsim::NicProgram;
using nicsim::NicSim;
namespace keys = lnic::keys;

namespace {

/// Wraps a lambda as a NicProgram.
class LambdaProgram final : public NicProgram {
 public:
  explicit LambdaProgram(std::function<void(NicApi&)> body) : body_(std::move(body)) {}
  void handle(NicApi& api) override { body_(api); }
  [[nodiscard]] std::string name() const override { return "microbench"; }

 private:
  std::function<void(NicApi&)> body_;
};

workload::PacketMeta make_packet(std::uint16_t payload) {
  workload::PacketMeta pkt;
  pkt.proto = 17;  // UDP keeps the frame overhead constant
  pkt.payload_len = payload;
  pkt.src_ip = 0x01020304;
  pkt.dst_ip = 0x0a000001;
  pkt.src_port = 1234;
  pkt.dst_port = 80;
  return pkt;
}

double measure(NicSim& sim, std::uint16_t payload, const std::function<void(NicApi&)>& body) {
  LambdaProgram program(body);
  return static_cast<double>(sim.measure_one(program, make_packet(payload)));
}

}  // namespace

std::vector<std::pair<double, double>> emem_workingset_curve(const nicsim::NicConfig& config) {
  std::vector<std::pair<double, double>> curve;
  // For each working-set size, stream over it repeatedly and report the
  // average access latency. Below the cache capacity the steady state
  // is all hits; above it, LRU over a circular scan degrades to misses.
  for (double ws_mib : {0.5, 1.0, 2.0, 2.5, 3.0, 3.25, 3.5, 4.0, 6.0, 8.0, 12.0}) {
    const auto ws_bytes = static_cast<std::uint64_t>(ws_mib * 1024 * 1024);
    NicSim sim(config);
    const std::uint64_t line = config.emem_cache_line;
    const std::uint64_t lines = ws_bytes / line;
    const int rounds = 4;
    double total = 0.0;
    std::uint64_t accesses = 0;
    LambdaProgram program([&](NicApi& api) {
      const auto start = api.now();
      for (int r = 0; r < rounds; ++r) {
        for (std::uint64_t l = 0; l < lines; ++l) api.mem_read(MemLevel::kEmem, l * line);
      }
      total += static_cast<double>(api.now() - start);
      accesses += rounds * lines;
      api.drop();
    });
    sim.measure_one(program, make_packet(64));
    curve.emplace_back(ws_mib, total / static_cast<double>(accesses));
  }
  return curve;
}

ExtractionResult extract_parameters(const nicsim::NicConfig& config, const lnic::ParameterStore& databook) {
  ExtractionResult result;
  std::string& report = result.report;
  lnic::ParameterStore& p = result.params;

  NicSim sim(config);

  // Databook-sourced parameters (not observable through the program API).
  for (const char* key : {keys::kInstrAlu, keys::kInstrMul, keys::kInstrDiv, keys::kInstrBranch,
                          keys::kInstrFpEmulation, keys::kClockHz, keys::kHubService,
                          keys::kCtmPacketResidency, keys::kFlowCacheCapacity}) {
    p.set_scalar(key, databook.scalar(key));
  }

  // --- Datapath: latency of a no-op program vs. payload size -------------
  // Below the CTM residency the slope is the ingress per-byte cost; the
  // extra slope above it is the spill cost.
  {
    std::vector<double> xs, ys;
    for (std::uint16_t payload : {64, 128, 256, 512, 900}) {
      xs.push_back(payload + 42.0);  // UDP frame
      ys.push_back(measure(sim, payload, [](NicApi& api) { api.drop(); }));
    }
    const auto fit = linear_fit(xs, ys);
    const double egress_quarter = ys[0] - fit.slope * xs[0] - fit.intercept;  // ~0 by construction
    (void)egress_quarter;
    p.set_scalar(keys::kIngressDmaPerByte, fit.slope);
    // The intercept bundles hub service + ingress base + drop cost; peel
    // off the databook hub figure and attribute the drop tail.
    const double drop_cost = databook.scalar(keys::kEgressBase) * 0.25;
    p.set_scalar(keys::kIngressDmaBase, fit.intercept - databook.scalar(keys::kHubService) - drop_cost);
    report += strf("ingress: base=%.1f per_byte=%.3f (r2=%.4f)\n", p.scalar(keys::kIngressDmaBase), fit.slope,
                   fit.r2);

    std::vector<double> xs2, ys2;
    for (std::uint16_t payload : {1200, 1400, 1800, 2400}) {
      xs2.push_back(payload + 42.0);
      ys2.push_back(measure(sim, payload, [](NicApi& api) { api.drop(); }));
    }
    const auto fit2 = linear_fit(xs2, ys2);
    p.set_scalar(keys::kSpillPerByte, std::max(0.0, fit2.slope - fit.slope));
    report += strf("spill: per_byte=%.3f\n", p.scalar(keys::kSpillPerByte));
  }

  // --- Egress cost: emit vs drop difference --------------------------------
  {
    const double with_emit = measure(sim, 64, [](NicApi& api) { api.emit(); });
    const double with_drop = measure(sim, 64, [](NicApi& api) { api.drop(); });
    // emit = egress_base + hub; drop = egress_base/4.
    const double egress = (with_emit - with_drop - databook.scalar(keys::kHubService)) / 0.75;
    p.set_scalar(keys::kEgressBase, egress);
    report += strf("egress base=%.1f\n", egress);
  }

  const double base = measure(sim, 64, [](NicApi& api) { api.drop(); });
  // Size-dependent sections measure against a same-size no-op baseline so
  // the datapath's per-byte cost does not pollute the accelerator curves.
  const double base900 = measure(sim, 900, [](NicApi& api) { api.drop(); });

  // --- Memory levels (category 5) ------------------------------------------
  {
    const int n = 64;
    auto level_latency = [&](MemLevel level, bool cold) {
      const double t = measure(sim, 64, [&](NicApi& api) {
        for (int i = 0; i < n; ++i) {
          // Cold: stride past the cache line so every EMEM access misses.
          const std::uint64_t addr = cold ? (1ULL << 40) + static_cast<std::uint64_t>(i) * 8192 : 64;
          api.mem_read(level, addr);
        }
        api.drop();
      });
      return (t - base) / n;
    };
    p.set_scalar(keys::kMemReadLocal, level_latency(MemLevel::kLocal, false));
    p.set_scalar(keys::kMemWriteLocal, p.scalar(keys::kMemReadLocal));
    p.set_scalar(keys::kMemReadCtm, level_latency(MemLevel::kCtm, false));
    p.set_scalar(keys::kMemWriteCtm, p.scalar(keys::kMemReadCtm));
    p.set_scalar(keys::kMemReadImem, level_latency(MemLevel::kImem, false));
    p.set_scalar(keys::kMemWriteImem, p.scalar(keys::kMemReadImem));
    p.set_scalar(keys::kMemReadEmem, level_latency(MemLevel::kEmem, true));
    p.set_scalar(keys::kMemWriteEmem, p.scalar(keys::kMemReadEmem));
    // Warm EMEM accesses hit the cache.
    p.set_scalar(keys::kEmemCacheHit, level_latency(MemLevel::kEmem, false));
    report += strf("mem: local=%.1f ctm=%.1f imem=%.1f emem=%.1f emem$=%.1f\n", p.scalar(keys::kMemReadLocal),
                   p.scalar(keys::kMemReadCtm), p.scalar(keys::kMemReadImem), p.scalar(keys::kMemReadEmem),
                   p.scalar(keys::kEmemCacheHit));
  }

  // --- Parser and metadata modifications (categories 1 & 4) ---------------
  {
    const double parse = measure(sim, 64, [](NicApi& api) {
                           api.parse();
                           api.drop();
                         }) -
                         base;
    // The parse cost is base + per_byte * 40 for our 40-byte header set;
    // split it with the databook per-byte figure.
    p.set_scalar(keys::kParsePerByte, databook.scalar(keys::kParsePerByte));
    p.set_scalar(keys::kParseBase, parse - p.scalar(keys::kParsePerByte) * 40.0);
    const int n = 50;
    const double moves = measure(sim, 64, [&](NicApi& api) {
                           for (int i = 0; i < n; ++i) api.set_hdr(cir::HdrField::kSrcPort, 1);
                           api.drop();
                         }) -
                         base;
    p.set_scalar(keys::kInstrMove, moves / n);
    report += strf("parse=%.1f move=%.2f\n", parse, p.scalar(keys::kInstrMove));
  }

  // --- Checksum unit (category 2) -------------------------------------------
  {
    std::vector<std::pair<double, double>> accel_points;
    for (std::uint16_t len : {0, 250, 500, 1000, 1500}) {
      const double t = measure(sim, 900, [&](NicApi& api) {
                         api.csum(len, true);
                         api.drop();
                       }) -
                       base900;
      accel_points.emplace_back(len, t);
    }
    p.set_curve(keys::kCsumAccel, lnic::PiecewiseLinear(accel_points));
    const double sw = measure(sim, 900, [](NicApi& api) {
                        api.csum(1000, false);
                        api.drop();
                      }) -
                      base900;
    p.set_scalar(keys::kCsumSwExtra, sw - p.eval(keys::kCsumAccel, 1000.0));
    report += strf("csum: accel(1000B)=%.0f sw_extra=%.0f\n", p.eval(keys::kCsumAccel, 1000.0),
                   p.scalar(keys::kCsumSwExtra));
  }

  // --- Crypto engine ----------------------------------------------------------
  {
    std::vector<std::pair<double, double>> points;
    for (std::uint16_t len : {0, 512, 1024, 4096}) {
      const double t = measure(sim, 900, [&](NicApi& api) {
                         api.crypto(len, true);
                         api.drop();
                       }) -
                       base900;
      points.emplace_back(len, t);
    }
    p.set_curve(keys::kCryptoAccel, lnic::PiecewiseLinear(points));
    const double sw = measure(sim, 900, [](NicApi& api) {
                        api.crypto(1024, false);
                        api.drop();
                      }) -
                      base900;
    p.set_scalar(keys::kCryptoSwFactor, sw / std::max(1.0, p.eval(keys::kCryptoAccel, 1024.0)));
    report += strf("crypto: accel(1024B)=%.0f sw_factor=%.1f\n", p.eval(keys::kCryptoAccel, 1024.0),
                   p.scalar(keys::kCryptoSwFactor));
  }

  // --- LPM engine and flow cache (category 3) --------------------------------
  {
    std::vector<std::pair<double, double>> points;
    for (std::uint64_t entries : {1000ULL, 5000ULL, 15000ULL, 30000ULL}) {
      NicSim fresh(config);
      auto& lpm = fresh.create_lpm("mb_lpm", entries, 0);
      // Walk depth is key-dependent; average over several keys for the
      // mean curve (one key would bias the fit by up to ~10%).
      double total = 0.0;
      const int kKeys = 8;
      for (int k = 0; k < kKeys; ++k) {
        LambdaProgram program([&](NicApi& api) {
          api.lpm_lookup(lpm, api.pkt().flow_hash(), false);
          api.drop();
        });
        auto pkt = make_packet(64);
        pkt.src_ip = 0x01020304 + static_cast<std::uint32_t>(k) * 7919;
        total += static_cast<double>(fresh.measure_one(program, pkt));
      }
      points.emplace_back(static_cast<double>(entries), total / kKeys - base - config.flow_cache_hit);
    }
    p.set_curve(keys::kLpmDram, lnic::PiecewiseLinear(points));

    NicSim fresh(config);
    auto& lpm = fresh.create_lpm("mb_lpm_fc", 1000, config.flow_cache_entries);
    // Warm the cache with one lookup, then measure a hit.
    LambdaProgram warm([&](NicApi& api) {
      api.lpm_lookup(lpm, 77, true);
      api.drop();
    });
    fresh.measure_one(warm, make_packet(64));
    LambdaProgram hit([&](NicApi& api) {
      api.lpm_lookup(lpm, 77, true);
      api.drop();
    });
    const double t = static_cast<double>(fresh.measure_one(hit, make_packet(64)));
    p.set_scalar(keys::kFlowCacheHit, t - base);
    report += strf("lpm: dram(30k)=%.0f flow_cache_hit=%.0f\n", p.eval(keys::kLpmDram, 30000.0),
                   p.scalar(keys::kFlowCacheHit));
  }

  // --- EMEM cache capacity via the half-latency knee rule -------------------
  {
    const auto curve = emem_workingset_curve(config);
    std::vector<double> lats;
    lats.reserve(curve.size());
    for (const auto& [ws, lat] : curve) lats.push_back(lat);
    const std::size_t knee = find_knee(lats);
    if (knee < curve.size()) {
      result.discovered_emem_cache = static_cast<Bytes>(curve[knee].first * 1024 * 1024);
      report += strf("emem cache knee at %.1f MiB working set\n", curve[knee].first);
    }
  }

  return result;
}

}  // namespace clara::microbench
