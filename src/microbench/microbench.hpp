// Hardware microbenchmarking and parameter extraction — paper §3.2.
//
// "Clara needs to obtain [parameters] from hardware specifications or
// microbenchmarking, as a one-time effort for each SmartNIC." This
// module is that one-time effort against the simulated device: a suite
// of NF-independent "unit-test" programs covering 1) packet parsers,
// 2) checksum units, 3) the flow cache, 4) header/metadata
// modifications, 5) memory loads/stores at every hierarchy level, and
// 6) datapath costs — the six categories §4 lists. Measured values are
// fitted (linear fits for size-dependent curves; knee detection via the
// half-latency rule for capacity discovery) and written into a
// ParameterStore under the same keys the profiles use, so extracted
// parameters can replace databook defaults transparently.
//
// Instruction-class cycle tables (ALU/MUL/DIV/branch) come from the
// databook profile: per-instruction timing is not observable through
// the ported-program API, exactly as on real hardware without
// cycle-accurate tracing.
#pragma once

#include <string>

#include "lnic/params.hpp"
#include "nicsim/sim.hpp"

namespace clara::microbench {

struct ExtractionResult {
  lnic::ParameterStore params;
  /// Human-readable measurement log (one line per parameter).
  std::string report;
  /// EMEM cache capacity discovered by the working-set knee sweep.
  Bytes discovered_emem_cache = 0;
};

/// Runs the full microbenchmark suite on a fresh simulator instance and
/// returns extracted parameters. `databook` provides the values that
/// cannot be measured through the program API (instruction tables,
/// clock); everything else is measured.
ExtractionResult extract_parameters(const nicsim::NicConfig& config, const lnic::ParameterStore& databook);

/// Sweeps EMEM working-set size and returns average access latency per
/// size (the latency curve whose knee reveals the cache capacity).
std::vector<std::pair<double, double>> emem_workingset_curve(const nicsim::NicConfig& config);

}  // namespace clara::microbench
