// Linear / integer programming model builder.
//
// Clara encodes its mapping problem (paper §3.4) as a small MILP; this
// module provides the model representation, an exact two-phase simplex
// for LP relaxations, and branch-and-bound over the integer variables.
// Problem sizes are tens-to-hundreds of variables, so a dense tableau is
// the right tool — no external solver dependency.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace clara::ilp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarKind { kContinuous, kBinary, kInteger };

struct Variable {
  std::string name;
  VarKind kind = VarKind::kContinuous;
  double lo = 0.0;
  double hi = kInf;
};

struct LinTerm {
  int var = -1;
  double coef = 0.0;
};

/// A linear expression Σ coef·var + constant. Duplicate variables are
/// merged lazily by the consumers.
class LinExpr {
 public:
  LinExpr() = default;
  LinExpr(double constant) : constant_(constant) {}  // NOLINT(google-explicit-constructor)

  LinExpr& add(int var, double coef) {
    terms_.push_back({var, coef});
    return *this;
  }
  LinExpr& add_constant(double c) {
    constant_ += c;
    return *this;
  }
  LinExpr& operator+=(const LinExpr& other);

  [[nodiscard]] const std::vector<LinTerm>& terms() const { return terms_; }
  [[nodiscard]] double constant() const { return constant_; }

  /// Coefficient vector of length n (merging duplicates).
  [[nodiscard]] std::vector<double> dense(std::size_t n) const;

 private:
  std::vector<LinTerm> terms_;
  double constant_ = 0.0;
};

enum class Sense { kLe, kGe, kEq };

struct Constraint {
  LinExpr expr;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

class Model {
 public:
  int add_continuous(std::string name, double lo = 0.0, double hi = kInf);
  int add_binary(std::string name);
  int add_integer(std::string name, double lo, double hi);

  void add_constraint(LinExpr expr, Sense sense, double rhs, std::string name = {});

  /// Objective is always minimized; negate coefficients to maximize.
  void set_objective(LinExpr expr) { objective_ = std::move(expr); }

  [[nodiscard]] const std::vector<Variable>& variables() const { return vars_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const { return constraints_; }
  [[nodiscard]] const LinExpr& objective() const { return objective_; }
  [[nodiscard]] std::size_t num_vars() const { return vars_.size(); }
  [[nodiscard]] bool has_integers() const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> constraints_;
  LinExpr objective_;
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kLimit };

const char* to_string(SolveStatus status);

/// One improving integer solution found during branch-and-bound: after
/// exploring `node` nodes, the incumbent objective dropped to
/// `objective`. The trajectory shows how quickly the search converged
/// (a long flat tail means most nodes only proved optimality).
struct IncumbentStep {
  std::size_t node = 0;
  double objective = 0.0;
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  std::vector<double> values;
  double objective = 0.0;
  /// Branch-and-bound statistics (0 for pure LP solves).
  std::size_t nodes_explored = 0;
  /// Simplex pivots performed (summed over all LP relaxations for MILP
  /// solves).
  std::size_t pivots = 0;
  /// Incumbent trajectory, in discovery order (empty for pure LP solves).
  std::vector<IncumbentStep> incumbents;
  /// Optimal basis (standard-form column index per row), recorded by
  /// solve_lp when no artificial column is basic. Feed it to
  /// LpOptions::warm_basis to warm-start a child solve after a bound
  /// change. For MILP solves this is the incumbent's basis, usable to
  /// warm-start a re-solve of the same model. Empty otherwise.
  std::vector<std::size_t> basis;
  /// True when the search stopped at a deadline (SolveOptions::deadline)
  /// before proving optimality: the answer is the best incumbent found,
  /// not a certified optimum.
  bool degraded = false;

  [[nodiscard]] bool optimal() const { return status == SolveStatus::kOptimal; }
  [[nodiscard]] double value(int var) const { return values.at(static_cast<std::size_t>(var)); }
};

}  // namespace clara::ilp
