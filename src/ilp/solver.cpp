#include "ilp/solver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "ilp/simplex.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace clara::ilp {

namespace {

struct Node {
  std::vector<double> lo;
  std::vector<double> hi;
  double bound = -kInf;  // LP relaxation objective (lower bound for min)
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a, const std::shared_ptr<Node>& b) const {
    return a->bound > b->bound;  // best-bound-first
  }
};

/// Index of the most fractional integer variable, or -1 if all integral.
int pick_branch_var(const Model& model, const std::vector<double>& values, double tol) {
  int best = -1;
  double best_frac = tol;
  for (std::size_t i = 0; i < model.num_vars(); ++i) {
    if (model.variables()[i].kind == VarKind::kContinuous) continue;
    const double v = values[i];
    const double frac = std::abs(v - std::round(v));
    const double dist_to_half = std::abs(frac - 0.5);
    if (frac > tol) {
      // prefer fractions near 0.5
      const double score = 0.5 - dist_to_half + 0.5;
      if (best == -1 || score > best_frac) {
        best = static_cast<int>(i);
        best_frac = score;
      }
    }
  }
  return best;
}

}  // namespace

Solution solve_milp(const Model& model, const MilpOptions& options) {
  CLARA_TRACE_SCOPE("ilp/branch_and_bound");
  if (!model.has_integers()) return solve_lp(model);

  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  incumbent.objective = kInf;
  std::size_t total_pivots = 0;
  std::vector<IncumbentStep> trajectory;

  auto root = std::make_shared<Node>();
  root->lo.resize(model.num_vars());
  root->hi.resize(model.num_vars());
  for (std::size_t i = 0; i < model.num_vars(); ++i) {
    root->lo[i] = model.variables()[i].lo;
    root->hi[i] = model.variables()[i].hi;
  }

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>, NodeOrder> open;
  open.push(root);

  std::size_t explored = 0;
  bool hit_limit = false;

  while (!open.empty()) {
    if (explored >= options.max_nodes) {
      hit_limit = true;
      break;
    }
    const auto node = open.top();
    open.pop();
    ++explored;

    // Bound pruning against the incumbent.
    if (node->bound >= incumbent.objective - 1e-12) continue;

    LpOptions lp_options;
    lp_options.lo_override = node->lo;
    lp_options.hi_override = node->hi;
    const Solution relax = solve_lp(model, lp_options);
    total_pivots += relax.pivots;
    if (relax.status == SolveStatus::kInfeasible) continue;
    if (relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation of a bounded-integer problem means the
      // continuous part is unbounded; report it.
      Solution out;
      out.status = SolveStatus::kUnbounded;
      out.nodes_explored = explored;
      return out;
    }
    if (relax.status == SolveStatus::kLimit) {
      hit_limit = true;
      continue;
    }
    if (relax.objective >= incumbent.objective - 1e-12) continue;

    const int branch_var = pick_branch_var(model, relax.values, options.int_tol);
    if (branch_var < 0) {
      // Integral: new incumbent.
      Solution candidate = relax;
      // Snap near-integers exactly.
      for (std::size_t i = 0; i < model.num_vars(); ++i) {
        if (model.variables()[i].kind != VarKind::kContinuous) {
          candidate.values[i] = std::round(candidate.values[i]);
        }
      }
      if (candidate.objective < incumbent.objective) {
        incumbent = candidate;
        incumbent.status = SolveStatus::kOptimal;
        trajectory.push_back({explored, candidate.objective});
      }
      if (options.rel_gap > 0.0 && !open.empty()) {
        const double bound = open.top()->bound;
        if (incumbent.objective - bound <= options.rel_gap * std::max(1.0, std::abs(incumbent.objective))) break;
      }
      continue;
    }

    const double v = relax.values[static_cast<std::size_t>(branch_var)];
    auto down = std::make_shared<Node>(*node);
    down->hi[static_cast<std::size_t>(branch_var)] = std::floor(v);
    down->bound = relax.objective;
    auto up = std::make_shared<Node>(*node);
    up->lo[static_cast<std::size_t>(branch_var)] = std::ceil(v);
    up->bound = relax.objective;
    if (down->lo[static_cast<std::size_t>(branch_var)] <= down->hi[static_cast<std::size_t>(branch_var)]) {
      open.push(down);
    }
    if (up->lo[static_cast<std::size_t>(branch_var)] <= up->hi[static_cast<std::size_t>(branch_var)]) {
      open.push(up);
    }
  }

  incumbent.nodes_explored = explored;
  incumbent.pivots = total_pivots;
  incumbent.incumbents = std::move(trajectory);
  if (incumbent.status != SolveStatus::kOptimal && hit_limit) incumbent.status = SolveStatus::kLimit;

  auto& registry = obs::metrics();
  registry.counter("ilp/solves").inc();
  registry.counter("ilp/nodes_explored").inc(explored);
  registry.counter("ilp/pivots").inc(total_pivots);
  registry.counter("ilp/incumbents").inc(incumbent.incumbents.size());
  return incumbent;
}

}  // namespace clara::ilp
