#include "ilp/solver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "common/parallel.hpp"
#include "fault/fault.hpp"
#include "ilp/simplex.hpp"
#include "obs/metrics.hpp"
#include "obs/pool.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace clara::ilp {

namespace {

struct Node {
  std::vector<double> lo;
  std::vector<double> hi;
  double bound = -kInf;  // LP relaxation objective (lower bound for min)
  /// Parent's optimal basis, used to warm-start this node's relaxation.
  std::vector<std::size_t> warm_basis;
  /// Creation order — the deterministic tie-break for equal bounds, so
  /// the search visits nodes in the same order at every jobs level.
  std::uint64_t seq = 0;
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a, const std::shared_ptr<Node>& b) const {
    if (a->bound != b->bound) return a->bound > b->bound;  // best-bound-first
    return a->seq > b->seq;                                // then oldest-first
  }
};

/// Nodes popped per wave. The relaxations of one wave solve in
/// parallel; their results are applied strictly in pop order, which is
/// what makes the search deterministic. Fixed (never derived from the
/// jobs level) so the explored node sequence is identical at every
/// concurrency setting.
constexpr std::size_t kWaveWidth = 16;

struct WaveResult {
  Solution relax;
  bool solved = false;
};

}  // namespace

int pick_branch_var(const Model& model, const std::vector<double>& values, double tol) {
  int best = -1;
  double best_score = -1.0;
  for (std::size_t i = 0; i < model.num_vars(); ++i) {
    if (model.variables()[i].kind == VarKind::kContinuous) continue;
    const double v = values[i];
    const double frac = std::abs(v - std::round(v));
    if (frac <= tol) continue;
    // Most-fractional rule: score peaks at frac == 0.5 and is symmetric
    // around it; strict > keeps the lowest index on exact ties.
    const double score = 0.5 - std::abs(frac - 0.5);
    if (score > best_score) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  return best;
}

Solution solve_milp(const Model& model, const SolveOptions& options) {
  CLARA_TRACE_SCOPE("ilp/branch_and_bound");
  if (!model.has_integers()) {
    LpOptions lp_options;
    lp_options.warm_basis = options.warm_basis;
    lp_options.algorithm = options.algorithm;
    return solve_lp(model, lp_options);
  }

  const auto pool_before = parallel::pool().stats();

  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  incumbent.objective = kInf;
  std::size_t total_pivots = 0;
  std::vector<IncumbentStep> trajectory;

  std::uint64_t next_seq = 0;
  auto root = std::make_shared<Node>();
  root->lo.resize(model.num_vars());
  root->hi.resize(model.num_vars());
  for (std::size_t i = 0; i < model.num_vars(); ++i) {
    root->lo[i] = model.variables()[i].lo;
    root->hi[i] = model.variables()[i].hi;
  }
  root->seq = next_seq++;
  root->warm_basis = options.warm_basis;

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>, NodeOrder> open;
  open.push(root);

  std::size_t explored = 0;
  std::uint64_t wave_index = 0;
  bool hit_limit = false;
  bool hit_deadline = false;
  bool stop_search = false;
  std::vector<std::shared_ptr<Node>> wave;
  std::vector<WaveResult> results;

  while (!open.empty() && !stop_search) {
    // The deadline is checked only here, at the wave boundary: the node
    // sequence explored before the stop is always a prefix of the
    // deterministic no-deadline sequence, and a budget short enough to
    // expire before the first wave stops identically at every jobs
    // level (what the determinism tests rely on). The fault site rides
    // the same check, keyed by the wave index — itself deterministic —
    // so an injected "spurious timeout" reproduces bit-identically.
    const std::uint64_t this_wave = wave_index;
    if (options.deadline && std::chrono::steady_clock::now() >= *options.deadline) {
      hit_deadline = true;
      // Deadline expiry is a failure-adjacent event: the mapping that
      // comes back is best-effort. Preserve the run-up for diagnosis
      // (auto_dump throttles itself to once per process).
      obs::recorder().auto_dump("ilp_deadline");
      break;
    }
    if (fault::inject("ilp/wave_timeout", wave_index++)) {
      hit_deadline = true;  // the fault site dumps the recorder itself
      break;
    }
    // Form a wave of the globally best open nodes. Wave composition
    // depends only on the heap (deterministic), never on timing.
    wave.clear();
    while (wave.size() < kWaveWidth && !open.empty() && explored + wave.size() < options.max_nodes) {
      wave.push_back(open.top());
      open.pop();
    }
    if (wave.empty()) {
      hit_limit = true;  // node budget exhausted with work remaining
      break;
    }

    // Solve the wave's LP relaxations concurrently. Pruning here uses
    // the incumbent as of the wave boundary — a deterministic snapshot —
    // so which nodes get solved never depends on thread scheduling.
    // (A node that an in-wave incumbent would prune is solved anyway and
    // discarded below: wasted work, never wrong results.)
    const double wave_incumbent = incumbent.objective;
    results.assign(wave.size(), WaveResult{});
    obs::record(obs::FlightEventKind::kWaveEnter, this_wave, wave.size());
    const auto wave_t0 = std::chrono::steady_clock::now();
    parallel::parallel_for_jobs(
        options.jobs, 0, wave.size(),
        [&](std::size_t i) {
          const auto& node = wave[i];
          if (node->bound >= wave_incumbent - 1e-12) return;
          LpOptions lp_options;
          lp_options.lo_override = node->lo;
          lp_options.hi_override = node->hi;
          lp_options.warm_basis = node->warm_basis;
          lp_options.algorithm = options.algorithm;
          results[i].relax = solve_lp(model, lp_options);
          results[i].solved = true;
        },
        std::max<std::size_t>(1, options.wave_grain));
    // The wave barrier just completed: every relaxation is done and the
    // caller waited for the slowest one. Per-wave wall time is the
    // barrier-wait figure `clara profile` and the wave histogram report.
    const auto wave_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - wave_t0)
                             .count();
    obs::record(obs::FlightEventKind::kWaveExit, this_wave,
                static_cast<std::uint64_t>(wave_ns));
    obs::metrics().histogram("ilp/wave_ns").observe(static_cast<double>(wave_ns));

    // Apply results strictly in pop order. Everything below is serial
    // and a pure function of (model, options, wave, results), so the
    // incumbent trajectory, node/pivot counts, and final Solution are
    // bit-identical at every jobs level.
    for (std::size_t i = 0; i < wave.size() && !stop_search; ++i) {
      const auto& node = wave[i];
      ++explored;

      // Bound pruning against the incumbent (which may have improved
      // earlier in this wave — discarded solves leave no trace, not
      // even their pivots).
      if (node->bound >= incumbent.objective - 1e-12) continue;

      const Solution& relax = results[i].relax;
      total_pivots += relax.pivots;
      if (relax.status == SolveStatus::kInfeasible) continue;
      if (relax.status == SolveStatus::kUnbounded) {
        // An unbounded relaxation of a bounded-integer problem means the
        // continuous part is unbounded; report it.
        Solution out;
        out.status = SolveStatus::kUnbounded;
        out.nodes_explored = explored;
        return out;
      }
      if (relax.status == SolveStatus::kLimit) {
        hit_limit = true;
        continue;
      }
      if (relax.objective >= incumbent.objective - 1e-12) continue;

      const int branch_var = pick_branch_var(model, relax.values, options.int_tol);
      if (branch_var < 0) {
        // Integral: new incumbent. Its basis is kept on the Solution so
        // a re-solve of the same model can warm-start from it.
        Solution candidate = relax;
        // Snap near-integers exactly.
        for (std::size_t v = 0; v < model.num_vars(); ++v) {
          if (model.variables()[v].kind != VarKind::kContinuous) {
            candidate.values[v] = std::round(candidate.values[v]);
          }
        }
        if (candidate.objective < incumbent.objective) {
          incumbent = candidate;
          incumbent.status = SolveStatus::kOptimal;
          trajectory.push_back({explored, candidate.objective});
        }
        if (options.rel_gap > 0.0) {
          // Best outstanding bound: the open heap plus this wave's
          // not-yet-applied tail.
          double bound = open.empty() ? kInf : open.top()->bound;
          for (std::size_t k = i + 1; k < wave.size(); ++k) bound = std::min(bound, wave[k]->bound);
          if (bound != kInf &&
              incumbent.objective - bound <= options.rel_gap * std::max(1.0, std::abs(incumbent.objective))) {
            stop_search = true;
          }
        }
        continue;
      }

      const double v = relax.values[static_cast<std::size_t>(branch_var)];
      auto down = std::make_shared<Node>();
      down->lo = node->lo;
      down->hi = node->hi;
      down->hi[static_cast<std::size_t>(branch_var)] = std::floor(v);
      down->bound = relax.objective;
      down->warm_basis = relax.basis;
      auto up = std::make_shared<Node>();
      up->lo = node->lo;
      up->hi = node->hi;
      up->lo[static_cast<std::size_t>(branch_var)] = std::ceil(v);
      up->bound = relax.objective;
      up->warm_basis = relax.basis;
      if (down->lo[static_cast<std::size_t>(branch_var)] <= down->hi[static_cast<std::size_t>(branch_var)]) {
        down->seq = next_seq++;
        open.push(down);
      }
      if (up->lo[static_cast<std::size_t>(branch_var)] <= up->hi[static_cast<std::size_t>(branch_var)]) {
        up->seq = next_seq++;
        open.push(up);
      }
    }
  }

  incumbent.nodes_explored = explored;
  incumbent.pivots = total_pivots;
  incumbent.incumbents = std::move(trajectory);
  incumbent.degraded = hit_deadline;
  if (incumbent.status != SolveStatus::kOptimal && (hit_limit || hit_deadline)) {
    incumbent.status = SolveStatus::kLimit;
  }

  auto& registry = obs::metrics();
  registry.counter("ilp/solves").inc();
  registry.counter("ilp/nodes_explored").inc(explored);
  registry.counter("ilp/pivots").inc(total_pivots);
  registry.counter("ilp/incumbents").inc(incumbent.incumbents.size());
  if (hit_deadline) registry.counter("ilp/deadline_hits").inc();
  obs::publish_pool_stats("ilp", pool_before, parallel::pool().stats());
  return incumbent;
}

}  // namespace clara::ilp
