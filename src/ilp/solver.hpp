// Branch-and-bound MILP solver over the simplex LP relaxation.
#pragma once

#include <chrono>
#include <optional>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace clara::ilp {

struct SolveOptions {
  std::size_t max_nodes = 100'000;
  /// Integrality tolerance: values within this of an integer count.
  double int_tol = 1e-6;
  /// Stop early when the incumbent is within this relative gap of the
  /// best bound (0 = prove optimality).
  double rel_gap = 0.0;
  /// Concurrency for the branch-and-bound search (0 = the global
  /// parallel::jobs() level, 1 = fully serial). The returned Solution is
  /// bit-identical at every jobs value: node waves are formed and applied
  /// deterministically and only the LP relaxations run concurrently.
  std::size_t jobs = 0;
  /// Absolute wall-clock deadline. Checked only at wave boundaries, so
  /// the explored-node sequence up to the stop is the deterministic one;
  /// on expiry the best incumbent so far is returned with
  /// Solution::degraded set (status kLimit when no incumbent exists —
  /// callers then substitute their own fallback). nullopt = unbounded.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Basis to warm-start the root relaxation with (from a previous solve
  /// of the same model, e.g. a deadline-degraded attempt). Only pass a
  /// basis recorded against this exact model: a stale basis is repaired
  /// by dual simplex, but may steer a degenerate LP to a different
  /// optimal vertex.
  std::vector<std::size_t> warm_basis;
  /// Sibling nodes batched per pool task when a wave's relaxations run
  /// concurrently. Node LPs are short (tens of microseconds warm), so
  /// one task per node spends a visible fraction of the wave on
  /// submit/steal overhead; batching amortizes it. Purely a scheduling
  /// knob: results are applied in pop order regardless, so the returned
  /// Solution is bit-identical at every grain.
  std::size_t wave_grain = 4;
  /// Simplex engine for every relaxation (see LpAlgorithm): kRevised
  /// unless a test pins the dense reference engine.
  LpAlgorithm algorithm = LpAlgorithm::kRevised;
};

/// Deprecated spelling from before deadlines existed; new code should
/// say SolveOptions.
using MilpOptions = SolveOptions;

/// Index of the integer variable whose fractional part is closest to
/// one half (the classic most-fractional branching rule), or -1 when
/// every integer variable is integral within tol. Ties break toward the
/// lowest variable index. Exposed for testing.
int pick_branch_var(const Model& model, const std::vector<double>& values, double tol);

/// Solves the model, honoring binary/integer variable kinds. Returns
/// kOptimal with the best integer solution, kInfeasible when none
/// exists, kLimit when the node or time budget ran out with no incumbent
/// (with an incumbent, kOptimal is returned — the caller can inspect
/// nodes_explored against max_nodes, or Solution::degraded for deadline
/// stops, if it cares about proof quality).
Solution solve_milp(const Model& model, const SolveOptions& options = {});

}  // namespace clara::ilp
