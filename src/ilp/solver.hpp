// Branch-and-bound MILP solver over the simplex LP relaxation.
#pragma once

#include "ilp/model.hpp"

namespace clara::ilp {

struct MilpOptions {
  std::size_t max_nodes = 100'000;
  /// Integrality tolerance: values within this of an integer count.
  double int_tol = 1e-6;
  /// Stop early when the incumbent is within this relative gap of the
  /// best bound (0 = prove optimality).
  double rel_gap = 0.0;
};

/// Solves the model, honoring binary/integer variable kinds. Returns
/// kOptimal with the best integer solution, kInfeasible when none
/// exists, kLimit when the node budget ran out with no incumbent
/// (with an incumbent, kOptimal is returned — the caller can inspect
/// nodes_explored against max_nodes if it cares about proof quality).
Solution solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace clara::ilp
