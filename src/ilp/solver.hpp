// Branch-and-bound MILP solver over the simplex LP relaxation.
#pragma once

#include "ilp/model.hpp"

namespace clara::ilp {

struct MilpOptions {
  std::size_t max_nodes = 100'000;
  /// Integrality tolerance: values within this of an integer count.
  double int_tol = 1e-6;
  /// Stop early when the incumbent is within this relative gap of the
  /// best bound (0 = prove optimality).
  double rel_gap = 0.0;
  /// Concurrency for the branch-and-bound search (0 = the global
  /// parallel::jobs() level, 1 = fully serial). The returned Solution is
  /// bit-identical at every jobs value: node waves are formed and applied
  /// deterministically and only the LP relaxations run concurrently.
  std::size_t jobs = 0;
};

/// Index of the integer variable whose fractional part is closest to
/// one half (the classic most-fractional branching rule), or -1 when
/// every integer variable is integral within tol. Ties break toward the
/// lowest variable index. Exposed for testing.
int pick_branch_var(const Model& model, const std::vector<double>& values, double tol);

/// Solves the model, honoring binary/integer variable kinds. Returns
/// kOptimal with the best integer solution, kInfeasible when none
/// exists, kLimit when the node budget ran out with no incumbent
/// (with an incumbent, kOptimal is returned — the caller can inspect
/// nodes_explored against max_nodes if it cares about proof quality).
Solution solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace clara::ilp
