// Dense two-phase primal simplex for LP relaxations.
//
// The solver works on a Model, ignoring integrality (branch-and-bound
// enforces it by tightening variable bounds). Bland's rule guards
// against cycling; a dense tableau is appropriate at Clara's problem
// sizes (hundreds of variables).
#pragma once

#include <vector>

#include "ilp/model.hpp"

namespace clara::ilp {

struct LpOptions {
  /// Per-variable bound overrides used by branch-and-bound; empty means
  /// use the model's own bounds. Sized num_vars when present.
  std::vector<double> lo_override;
  std::vector<double> hi_override;
  std::size_t max_pivots = 200'000;
  /// Warm-start basis (standard-form column index per row), typically
  /// the parent node's Solution::basis. Branching only changes bound
  /// values, which is an rhs-only perturbation of the standard form, so
  /// the parent basis stays dual-feasible: the solver pivots into it,
  /// repairs primal feasibility with dual simplex, and skips phase 1.
  /// Ignored (cold solve) when structurally incompatible.
  std::vector<std::size_t> warm_basis;
};

/// Solves the LP relaxation. Solution::values has one entry per model
/// variable (in model order) when status is kOptimal.
Solution solve_lp(const Model& model, const LpOptions& options = {});

}  // namespace clara::ilp
