// Simplex solvers for LP relaxations.
//
// The solver works on a Model, ignoring integrality (branch-and-bound
// enforces it by tightening variable bounds). Bland's rule guards
// against cycling. Two interchangeable engines share one sparse
// standard form and produce bit-identical Solutions:
//
//  - kRevised (default): revised simplex. The constraint matrix stays
//    in compressed sparse column form; the basis inverse is an eta
//    file (product form), pricing works on BTRAN dual vectors dotted
//    against pristine sparse columns, and only the entering column is
//    ever materialized — a pivot costs O(m + eta file) instead of the
//    whole O(rows × cols) tableau.
//  - kDense: the original explicit-tableau engine, kept as the
//    reference implementation the equivalence suite checks the
//    revised engine against.
#pragma once

#include <vector>

#include "ilp/model.hpp"

namespace clara::ilp {

/// Which simplex engine solve_lp runs. Both produce bit-identical
/// Solutions (asserted by the dense-vs-revised equivalence suite);
/// kDense exists as the reference implementation and costs
/// O(rows × cols) per pivot.
enum class LpAlgorithm { kRevised, kDense };

struct LpOptions {
  /// Per-variable bound overrides used by branch-and-bound; empty means
  /// use the model's own bounds. Sized num_vars when present.
  std::vector<double> lo_override;
  std::vector<double> hi_override;
  std::size_t max_pivots = 200'000;
  /// Warm-start basis (standard-form column index per row), typically
  /// the parent node's Solution::basis. Branching only changes bound
  /// values, which is an rhs-only perturbation of the standard form, so
  /// the parent basis stays dual-feasible: the solver pivots into it,
  /// repairs primal feasibility with dual simplex, and skips phase 1.
  /// Ignored (cold solve) when structurally incompatible.
  std::vector<std::size_t> warm_basis;
  LpAlgorithm algorithm = LpAlgorithm::kRevised;
};

/// Solves the LP relaxation. Solution::values has one entry per model
/// variable (in model order) when status is kOptimal.
Solution solve_lp(const Model& model, const LpOptions& options = {});

}  // namespace clara::ilp
