// Two-phase simplex over a shared sparse standard form.
//
// One decision engine, two matrix backends. Engine<Mat> owns
// everything that *decides* — pricing, the ratio test, dual simplex,
// phase structure, warm-basis install, periodic refactorization — and
// it prices the revised way for both backends: the basis inverse is
// kept as a shared eta file (product form of the inverse), the dual
// vector pi = c_B' B^-1 comes from one BTRAN pass per iteration, and a
// candidate's reduced cost is a sparse dot against its *pristine* CSC
// column. Pricing therefore costs O(nnz) per candidate instead of
// O(rows), and Mat only answers "what is tableau column j right now?"
// for the handful of columns a pivot actually needs: the entering
// column, warm installs, refactorization replays.
//
//  - DenseMatrix keeps the explicit tableau and updates every column
//    on every pivot (the original O(rows × cols) engine, kept as the
//    reference implementation).
//  - SparseMatrix materializes a requested column on demand: scatter
//    the pristine column, then one FTRAN replay of the eta file. No
//    tableau exists at all, so a pivot costs O(m + eta file) instead
//    of O(rows × cols).
//
// Bit-identity between the two is by construction: the eta recorded at
// each pivot is taken from the materialized column w, FTRAN performs
// op-for-op the dense tableau's column update (v[row] /= pivot, then
// v[r] -= multiplier * v[row] for every multiplier at or above kEps),
// and every pricing decision reads the shared eta file — so both
// backends see the same numbers and pivot the same way. The
// equivalence suite in tests/simplex_equiv_test.cpp asserts it stays
// that way.
//
// Branch-and-bound calls solve_lp once per node, so per-solve setup
// cost is as hot as the pivot loop. All scratch — the standard form,
// the engines, the eta pools — lives in a thread-local workspace and
// is reused across solves; buffers are logically reinitialized but
// keep their capacity.
#include "ilp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>

namespace clara::ilp {

namespace {

constexpr double kEps = 1e-9;
constexpr std::size_t kNone = ~std::size_t{0};

/// Counted pivots between basis refactorizations. Refactorizing
/// replays the current basis from the pristine matrix, which resets
/// accumulated floating-point drift and truncates the eta file — and
/// the eta file's length is what every BTRAN/FTRAN pass pays, so the
/// interval bounds per-iteration pricing cost too. Both backends
/// refactorize at the same cadence with the same row selection, so
/// they stay in lockstep. The clock counts from solve start (warm
/// installs included), so short node solves never refactorize
/// mid-solve; long degenerate solves do, and the cleaner numerics
/// usually saves them pivots outright — on the B&B bench this cadence
/// cuts total pivots by more than half versus never refactorizing.
constexpr std::size_t kRefactorEvery = 40;

/// Standard-form problem: minimize c'y subject to A y = b, y >= 0,
/// built from the model by shifting variables to zero lower bounds,
/// adding upper-bound rows, and introducing slack/surplus columns
/// (artificials are appended per-solve by the engine). The matrix is
/// stored sparse, compressed by column; entries within a column are
/// ordered by row.
struct Standard {
  std::size_t n_model = 0;  // original variable count
  std::size_t n = 0;        // structural columns (model + slack/surplus)
  std::size_t m = 0;        // rows
  std::vector<std::size_t> col_ptr;  // n + 1
  std::vector<std::size_t> col_row;  // nnz
  std::vector<double> col_val;       // nnz
  std::vector<double> b;
  std::vector<double> c;      // length n
  std::vector<double> shift;  // y_i = x_i - lo_i for model vars
  double obj_const = 0.0;
  bool infeasible_bounds = false;
};

/// Reused row-major staging for build_standard: constraint rows are
/// assembled flat, normalized, then transposed into the Standard's CSC
/// arrays. Nothing here allocates once capacities warm up.
struct BuildScratch {
  std::vector<double> lo, hi, merge;
  std::vector<std::size_t> row_ptr;  // m + 1, into row_col/row_val
  std::vector<std::size_t> row_col;
  std::vector<double> row_val;
  std::vector<Sense> row_sense;
  std::vector<double> row_rhs;
  std::vector<std::size_t> col_cursor;
};

void build_standard(const Model& model, const LpOptions& options, Standard& s,
                    BuildScratch& bs) {
  s.n_model = model.num_vars();
  s.infeasible_bounds = false;
  s.obj_const = 0.0;

  bs.lo.resize(s.n_model);
  bs.hi.resize(s.n_model);
  for (std::size_t i = 0; i < s.n_model; ++i) {
    const auto& v = model.variables()[i];
    bs.lo[i] = options.lo_override.empty() ? v.lo : options.lo_override[i];
    bs.hi[i] = options.hi_override.empty() ? v.hi : options.hi_override[i];
    if (bs.lo[i] > bs.hi[i] + kEps) s.infeasible_bounds = true;
  }
  if (s.infeasible_bounds) return;

  s.shift = bs.lo;

  // Row construction: model constraints (with senses) then upper-bound
  // rows for variables with finite hi. Rows hold only their nonzero
  // coefficients; a zero coefficient's contribution to the shifted rhs
  // is an exact no-op, so skipping it preserves the arithmetic.
  bs.merge.assign(s.n_model, 0.0);
  bs.row_ptr.clear();
  bs.row_col.clear();
  bs.row_val.clear();
  bs.row_sense.clear();
  bs.row_rhs.clear();
  bs.row_ptr.push_back(0);
  for (const auto& con : model.constraints()) {
    // Merge duplicate terms exactly like LinExpr::dense (accumulate in
    // term order), then gather in index order.
    for (const auto& t : con.expr.terms()) bs.merge[static_cast<std::size_t>(t.var)] += t.coef;
    double rhs = con.rhs - con.expr.constant();
    // Shift variables: Σ a_i (y_i + lo_i) ⋈ rhs.
    for (std::size_t i = 0; i < s.n_model; ++i) {
      const double coef = bs.merge[i];
      bs.merge[i] = 0.0;
      if (coef == 0.0) continue;
      rhs -= coef * bs.lo[i];
      bs.row_col.push_back(i);
      bs.row_val.push_back(coef);
    }
    bs.row_ptr.push_back(bs.row_col.size());
    bs.row_sense.push_back(con.sense);
    bs.row_rhs.push_back(rhs);
  }
  for (std::size_t i = 0; i < s.n_model; ++i) {
    if (bs.hi[i] == kInf) continue;
    bs.row_col.push_back(i);
    bs.row_val.push_back(1.0);
    bs.row_ptr.push_back(bs.row_col.size());
    bs.row_sense.push_back(Sense::kLe);
    bs.row_rhs.push_back(bs.hi[i] - bs.lo[i]);
  }

  s.m = bs.row_sense.size();
  // Columns: model vars + one slack/surplus per inequality.
  std::size_t extra = 0;
  for (const auto sense : bs.row_sense) {
    if (sense != Sense::kEq) ++extra;
  }
  s.n = s.n_model + extra;

  // Normalize to non-negative rhs, then transpose row-major staging
  // into CSC (rows visited in order keep each column's entries
  // row-sorted).
  s.b.assign(s.m, 0.0);
  for (std::size_t r = 0; r < s.m; ++r) {
    if (bs.row_rhs[r] < 0) {
      for (std::size_t k = bs.row_ptr[r]; k < bs.row_ptr[r + 1]; ++k) {
        bs.row_val[k] = -bs.row_val[k];
      }
      bs.row_rhs[r] = -bs.row_rhs[r];
      if (bs.row_sense[r] == Sense::kLe) {
        bs.row_sense[r] = Sense::kGe;
      } else if (bs.row_sense[r] == Sense::kGe) {
        bs.row_sense[r] = Sense::kLe;
      }
    }
    s.b[r] = bs.row_rhs[r];
  }
  bs.col_cursor.assign(s.n + 1, 0);
  for (const auto col : bs.row_col) ++bs.col_cursor[col + 1];
  std::size_t slack_col = s.n_model;
  for (std::size_t r = 0; r < s.m; ++r) {
    if (bs.row_sense[r] != Sense::kEq) ++bs.col_cursor[slack_col++ + 1];
  }
  s.col_ptr.assign(s.n + 1, 0);
  for (std::size_t j = 0; j < s.n; ++j) s.col_ptr[j + 1] = s.col_ptr[j] + bs.col_cursor[j + 1];
  const std::size_t nnz = s.col_ptr[s.n];
  s.col_row.resize(nnz);
  s.col_val.resize(nnz);
  std::copy(s.col_ptr.begin(), s.col_ptr.end() - 1, bs.col_cursor.begin());
  slack_col = s.n_model;
  for (std::size_t r = 0; r < s.m; ++r) {
    for (std::size_t k = bs.row_ptr[r]; k < bs.row_ptr[r + 1]; ++k) {
      const std::size_t at = bs.col_cursor[bs.row_col[k]]++;
      s.col_row[at] = r;
      s.col_val[at] = bs.row_val[k];
    }
    if (bs.row_sense[r] != Sense::kEq) {
      const std::size_t at = bs.col_cursor[slack_col]++;
      s.col_row[at] = r;
      s.col_val[at] = bs.row_sense[r] == Sense::kLe ? 1.0 : -1.0;
      ++slack_col;
    }
  }

  // Objective over shifted variables.
  s.c.assign(s.n, 0.0);
  const auto obj = model.objective().dense(s.n_model);
  s.obj_const = model.objective().constant();
  for (std::size_t i = 0; i < s.n_model; ++i) {
    s.c[i] = obj[i];
    s.obj_const += obj[i] * bs.lo[i];
  }
}

/// Initial basis from slack columns: a slack with +1 in exactly one
/// row (which is every kLe slack by construction) can start basic for
/// that row. Rows left kNone get an artificial.
void detect_initial_basis(const Standard& s, std::vector<std::size_t>& basis) {
  basis.assign(s.m, kNone);
  for (std::size_t j = s.n_model; j < s.n; ++j) {
    const std::size_t begin = s.col_ptr[j];
    if (s.col_ptr[j + 1] - begin != 1) continue;
    if (s.col_val[begin] != 1.0) continue;
    const std::size_t r = s.col_row[begin];
    if (basis[r] == kNone) basis[r] = j;
  }
}

/// Product-form basis inverse shared by both backends: pivot k is one
/// Gauss-Jordan step stored as its pivot row, pivot value, and off-row
/// multipliers. FTRAN replays the steps forward to carry a pristine
/// column to the current tableau; BTRAN runs them transposed, in
/// reverse, to form dual vectors (pi = c_B' B^-1, single rows of B^-1)
/// without materializing any column at all.
struct EtaFile {
  struct Eta {
    std::uint32_t row = 0;
    double pivot = 1.0;
    std::size_t begin = 0;  // range in mult_row/mult_val
    std::size_t end = 0;
  };
  std::vector<Eta> etas;
  std::vector<std::uint32_t> mult_row;
  std::vector<double> mult_val;

  void clear() {
    etas.clear();
    mult_row.clear();
    mult_val.clear();
  }

  /// Records the pivot at `row` from the materialized column w.
  /// Multipliers mirror the dense update's skip rule: rows whose
  /// coefficient is below kEps are not touched there either.
  void record(std::size_t row, const double* w, std::size_t m) {
    Eta e;
    e.row = static_cast<std::uint32_t>(row);
    e.pivot = w[row];
    e.begin = mult_row.size();
    for (std::size_t r = 0; r < m; ++r) {
      if (r == row) continue;
      if (std::abs(w[r]) < kEps) continue;
      mult_row.push_back(static_cast<std::uint32_t>(r));
      mult_val.push_back(w[r]);
    }
    e.end = mult_row.size();
    etas.push_back(e);
  }

  /// v := E_k ··· E_1 v — op-for-op the dense tableau's column update,
  /// applied to a freshly scattered pristine column.
  void ftran(double* v) const {
    for (const Eta& e : etas) {
      v[e.row] /= e.pivot;
      const double pv = v[e.row];
      for (std::size_t k = e.begin; k < e.end; ++k) {
        v[mult_row[k]] -= mult_val[k] * pv;
      }
    }
  }

  /// u := u E_k ··· E_1 — row-vector form, applied in reverse. Each
  /// eta differs from the identity only in its pivot column, so only
  /// u[row] changes per step.
  void btran(double* u) const {
    for (std::size_t i = etas.size(); i-- > 0;) {
      const Eta& e = etas[i];
      double acc = u[e.row];
      for (std::size_t k = e.begin; k < e.end; ++k) {
        acc -= mult_val[k] * u[mult_row[k]];
      }
      u[e.row] = acc / e.pivot;
    }
  }
};

/// Explicit-tableau backend: the pristine matrix is materialized dense
/// (structural CSC columns plus appended artificial unit columns) and
/// every pivot updates the whole tableau.
class DenseMatrix {
 public:
  void reset(const Standard& s, std::size_t n_total, const std::vector<std::size_t>& art_rows,
             const EtaFile&) {
    s_ = &s;
    n_total_ = n_total;
    art_rows_ = art_rows;
    materialize();
    scratch_.resize(s.m);
  }

  void reset_to_pristine() { materialize(); }

  const double* column(std::size_t j) {
    for (std::size_t r = 0; r < s_->m; ++r) scratch_[r] = a_[r * n_total_ + j];
    return scratch_.data();
  }

  void pivot(std::size_t row, std::size_t col) {
    double* pivot_row = &a_[row * n_total_];
    const double p = pivot_row[col];
    assert(std::abs(p) > kEps);
    for (std::size_t j = 0; j < n_total_; ++j) pivot_row[j] /= p;
    for (std::size_t r = 0; r < s_->m; ++r) {
      if (r == row) continue;
      double* other = &a_[r * n_total_];
      const double factor = other[col];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t j = 0; j < n_total_; ++j) other[j] -= factor * pivot_row[j];
    }
  }

 private:
  void materialize() {
    a_.assign(s_->m * n_total_, 0.0);
    for (std::size_t j = 0; j < s_->n; ++j) {
      for (std::size_t k = s_->col_ptr[j]; k < s_->col_ptr[j + 1]; ++k) {
        a_[s_->col_row[k] * n_total_ + j] = s_->col_val[k];
      }
    }
    for (std::size_t k = 0; k < art_rows_.size(); ++k) {
      a_[art_rows_[k] * n_total_ + s_->n + k] = 1.0;
    }
  }

  const Standard* s_ = nullptr;
  std::size_t n_total_ = 0;
  std::vector<std::size_t> art_rows_;
  std::vector<double> a_;  // m × n_total, row-major
  std::vector<double> scratch_;
};

/// Revised backend: no tableau anywhere. column(j) scatters the
/// pristine column into scratch and FTRANs it through the engine's eta
/// file — bit-identical to the dense column because FTRAN replays
/// exactly the updates the dense tableau applied eagerly. pivot() is a
/// no-op: the eta the engine records *is* this backend's state change.
class SparseMatrix {
 public:
  void reset(const Standard& s, std::size_t n_total, const std::vector<std::size_t>& art_rows,
             const EtaFile& etas) {
    s_ = &s;
    art_rows_ = &art_rows;
    eta_ = &etas;
    scratch_.resize(s.m);
    (void)n_total;
  }

  void reset_to_pristine() {}

  const double* column(std::size_t j) {
    double* v = scratch_.data();
    std::fill(v, v + s_->m, 0.0);
    if (j < s_->n) {
      for (std::size_t k = s_->col_ptr[j]; k < s_->col_ptr[j + 1]; ++k) {
        v[s_->col_row[k]] = s_->col_val[k];
      }
    } else {
      v[(*art_rows_)[j - s_->n]] = 1.0;
    }
    eta_->ftran(v);
    return v;
  }

  void pivot(std::size_t, std::size_t) {}

 private:
  const Standard* s_ = nullptr;
  const std::vector<std::size_t>* art_rows_ = nullptr;
  const EtaFile* eta_ = nullptr;
  std::vector<double> scratch_;
};

/// All simplex decisions, generic over the matrix backend. Phase 1
/// minimizes the artificial sum, phase 2 the true objective; warm
/// starts install a parent basis and repair with dual simplex. Every
/// entry point (solve, solve_warm) re-initializes from the pristine
/// standard form, so a failed warm install cannot leak partial state
/// into the cold fallback.
template <class Mat>
class Engine {
 public:
  Solution solve(const Standard& s, const Model& model, std::size_t max_pivots) {
    bind(s, max_pivots);
    Solution sol;
    if (s_->infeasible_bounds) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }

    detect_initial_basis(*s_, basis_);
    artificials_.clear();
    art_rows_.clear();
    n_total_ = s_->n;
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] != kNone) continue;
      artificials_.push_back(n_total_);
      art_rows_.push_back(r);
      basis_[r] = n_total_;
      ++n_total_;
    }
    c_ = s_->c;
    c_.resize(n_total_, 0.0);
    init_state();

    // Phase 1.
    if (!artificials_.empty()) {
      phase1_cost_.assign(n_total_, 0.0);
      for (const auto j : artificials_) phase1_cost_[j] = 1.0;
      const auto status = run(phase1_cost_);
      if (status != SolveStatus::kOptimal) {
        sol.status = status == SolveStatus::kUnbounded ? SolveStatus::kInfeasible : status;
        sol.pivots = pivots_done_;
        return sol;
      }
      double art_sum = 0.0;
      for (std::size_t r = 0; r < m_; ++r) {
        if (is_art_[basis_[r]]) art_sum += x_b_[r];
      }
      if (art_sum > 1e-7) {
        sol.status = SolveStatus::kInfeasible;
        sol.pivots = pivots_done_;
        return sol;
      }
      // Pivot remaining (degenerate) artificials out of the basis.
      for (std::size_t r = 0; r < m_; ++r) {
        if (!is_art_[basis_[r]]) continue;
        for (std::size_t j = 0; j < s_->n; ++j) {
          const double* col = mat_.column(j);
          if (std::abs(col[r]) > kEps) {
            pivot(r, j, col);
            break;
          }
        }
        // A row with no pivotable column is all-zero: redundant; the
        // artificial stays basic at value 0, which is harmless.
      }
    }

    // Phase 2: forbid artificials from re-entering by skipping them as
    // entering candidates inside run().
    phase2_ = true;
    sol = extract(model, run(c_));
    sol.pivots = pivots_done_;
    return sol;
  }

  /// Warm-started solve: pivot into `warm` (a parent-optimal basis),
  /// repair primal feasibility with dual simplex, then finish with
  /// primal phase 2 — phase 1 and its artificials are skipped
  /// entirely. Returns false when the basis is structurally
  /// incompatible or numerically singular; the engine re-standardizes
  /// on the next solve()/solve_warm() call, so the partial install
  /// cannot poison a fallback cold solve.
  bool solve_warm(const Standard& s, const Model& model, const std::vector<std::size_t>& warm,
                  std::size_t max_pivots, Solution& out) {
    bind(s, max_pivots);
    if (s_->infeasible_bounds || warm.size() != m_) return false;
    seen_.assign(s_->n, 0);
    for (const auto j : warm) {
      if (j >= s_->n || seen_[j]) return false;
      seen_[j] = 1;
    }

    basis_.assign(m_, kNone);
    artificials_.clear();
    art_rows_.clear();
    n_total_ = s_->n;
    c_ = s_->c;
    init_state();

    // Gauss-Jordan into the warm basis: for each basis column pick the
    // still-unassigned row with the largest pivot magnitude.
    row_done_.assign(m_, 0);
    for (const auto j : warm) {
      const double* w = mat_.column(j);
      std::size_t best_r = kNone;
      double best_abs = 1e-7;  // tighter than kEps: a near-singular basis is not worth keeping
      for (std::size_t r = 0; r < m_; ++r) {
        if (row_done_[r]) continue;
        const double mag = std::abs(w[r]);
        if (mag > best_abs) {
          best_abs = mag;
          best_r = r;
        }
      }
      if (best_r == kNone) return false;  // singular under this basis
      pivot(best_r, j, w);
      row_done_[best_r] = 1;
    }

    // The parent basis is dual-feasible here (branching is an rhs-only
    // change: bound overrides move `shift` and upper-bound rows, and the
    // sign-normalization is a row rescaling that reduced costs do not
    // see), so dual simplex restores b >= 0 without phase 1.
    auto status = dual_run();
    phase2_ = true;
    if (status == SolveStatus::kOptimal) status = run(c_);
    out = extract(model, status);
    out.pivots = pivots_done_;
    return true;
  }

 private:
  void bind(const Standard& s, std::size_t max_pivots) {
    s_ = &s;
    m_ = s.m;
    max_pivots_ = max_pivots;
  }

  void init_state() {
    x_b_ = s_->b;
    in_basis_.assign(n_total_, 0);
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] != kNone) in_basis_[basis_[r]] = 1;
    }
    is_art_.assign(n_total_, 0);
    for (const auto j : artificials_) is_art_[j] = 1;
    eta_.clear();
    mat_.reset(*s_, n_total_, art_rows_, eta_);
    phase2_ = false;
    pivots_done_ = 0;
    since_refactor_ = 0;
    refactor_failed_ = false;
  }

  /// Performs the basis change at (row, col). `w` is the current
  /// tableau column of `col` (B^-1 A_col), already materialized by the
  /// caller; the eta recorded from it is what both backends' future
  /// FTRAN/BTRAN passes replay.
  void pivot(std::size_t row, std::size_t col, const double* w, bool count = true) {
    const double p = w[row];
    assert(std::abs(p) > kEps);
    eta_.record(row, w, m_);
    // The rhs sees the same update the tableau rows do.
    x_b_[row] /= p;
    const double xb_row = x_b_[row];
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == row) continue;
      const double factor = w[r];
      if (std::abs(factor) < kEps) continue;
      x_b_[r] -= factor * xb_row;
    }
    mat_.pivot(row, col);
    if (basis_[row] != kNone) in_basis_[basis_[row]] = 0;
    basis_[row] = col;
    in_basis_[col] = 1;
    if (count) {
      ++pivots_done_;
      ++since_refactor_;
    }
  }

  /// Replays the current basis from the pristine matrix, discarding
  /// accumulated update history (the eta file shrinks back to one eta
  /// per basis column). Uncounted pivots: refactorization is
  /// bookkeeping, not simplex progress.
  void refactor() {
    refactor_basis_ = basis_;
    mat_.reset_to_pristine();
    eta_.clear();
    x_b_ = s_->b;
    basis_.assign(m_, kNone);
    in_basis_.assign(n_total_, 0);
    row_done_.assign(m_, 0);
    for (const auto col : refactor_basis_) {
      const double* w = mat_.column(col);
      std::size_t best_r = kNone;
      double best_abs = kEps;
      for (std::size_t r = 0; r < m_; ++r) {
        if (row_done_[r]) continue;
        const double mag = std::abs(w[r]);
        if (mag > best_abs) {
          best_abs = mag;
          best_r = r;
        }
      }
      if (best_r == kNone) {
        // A truly singular basis: the solve cannot continue soundly.
        refactor_failed_ = true;
        return;
      }
      pivot(best_r, col, w, /*count=*/false);
      row_done_[best_r] = 1;
    }
    since_refactor_ = 0;
  }

  /// pi = c_B' B^-1 via one BTRAN pass; the pricing loops dot it
  /// against pristine CSC columns instead of materializing B^-1 A_j.
  void compute_duals(const std::vector<double>& cost) {
    pi_.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) pi_[r] = cost[basis_[r]];
    eta_.btran(pi_.data());
  }

  /// Reduced cost r_j = c_j - pi · A_j against the pristine column:
  /// O(nnz) per candidate, independent of the row count.
  double reduced_cost(std::size_t j, const std::vector<double>& cost) const {
    double red = cost[j];
    if (j < s_->n) {
      for (std::size_t k = s_->col_ptr[j]; k < s_->col_ptr[j + 1]; ++k) {
        red -= pi_[s_->col_row[k]] * s_->col_val[k];
      }
    } else {
      red -= pi_[art_rows_[j - s_->n]];
    }
    return red;
  }

  SolveStatus run(const std::vector<double>& cost) {
    std::size_t pivots = 0;
    while (true) {
      if (++pivots > max_pivots_) return SolveStatus::kLimit;
      if (since_refactor_ >= kRefactorEvery) refactor();
      if (refactor_failed_) return SolveStatus::kLimit;

      // Bland's rule over pi-priced reduced costs: the first improving
      // index enters. Only that one column is ever materialized.
      compute_duals(cost);
      std::size_t entering = kNone;
      for (std::size_t j = 0; j < n_total_; ++j) {
        if (in_basis_[j]) continue;
        if (phase2_ && is_art_[j]) continue;
        if (reduced_cost(j, cost) < -1e-8) {
          entering = j;
          break;
        }
      }
      if (entering == kNone) return SolveStatus::kOptimal;

      // Ratio test (Bland: smallest basis index breaks ties).
      const double* col = mat_.column(entering);
      std::size_t leaving = kNone;
      double best_ratio = kInf;
      for (std::size_t r = 0; r < m_; ++r) {
        if (col[r] > kEps) {
          const double ratio = x_b_[r] / col[r];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && (leaving == kNone || basis_[r] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == kNone) return SolveStatus::kUnbounded;
      pivot(leaving, entering, col);
    }
  }

  /// Dual simplex. Precondition: reduced costs >= 0 (dual feasibility);
  /// drives b >= 0 while keeping them so. Leaving row: smallest index
  /// with b < -eps (Bland-safe); entering: minimum ratio
  /// reduced_j / |a[row][j]| over a[row][j] < -eps, where the pivot row
  /// a[row][·] is priced as rho · A_j with rho = row `row` of B^-1
  /// (one BTRAN of a unit vector). A row with no negative coefficient
  /// proves primal infeasibility.
  SolveStatus dual_run() {
    std::size_t pivots = 0;
    while (true) {
      if (++pivots > max_pivots_) return SolveStatus::kLimit;
      if (since_refactor_ >= kRefactorEvery) refactor();
      if (refactor_failed_) return SolveStatus::kLimit;
      std::size_t row = kNone;
      for (std::size_t r = 0; r < m_; ++r) {
        if (x_b_[r] < -kEps) {
          row = r;
          break;
        }
      }
      if (row == kNone) return SolveStatus::kOptimal;
      compute_duals(c_);
      rho_.assign(m_, 0.0);
      rho_[row] = 1.0;
      eta_.btran(rho_.data());
      std::size_t entering = kNone;
      double best_ratio = kInf;
      // Basic columns are unit vectors with a zero in `row` (or +1 for
      // the row's own basis column), so they never qualify as entering.
      for (std::size_t j = 0; j < s_->n; ++j) {
        double a_rj = 0.0;
        for (std::size_t k = s_->col_ptr[j]; k < s_->col_ptr[j + 1]; ++k) {
          a_rj += rho_[s_->col_row[k]] * s_->col_val[k];
        }
        if (a_rj >= -kEps) continue;
        const double ratio = std::max(0.0, reduced_cost(j, c_)) / -a_rj;
        if (ratio < best_ratio - kEps) {
          best_ratio = ratio;
          entering = j;
        }
      }
      if (entering == kNone) return SolveStatus::kInfeasible;
      pivot(row, entering, mat_.column(entering));
    }
  }

  Solution extract(const Model& model, SolveStatus status) {
    Solution sol;
    sol.status = status;
    if (status != SolveStatus::kOptimal) return sol;
    y_.assign(n_total_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) y_[basis_[r]] = x_b_[r];
    sol.values.assign(model.num_vars(), 0.0);
    double obj = s_->obj_const;
    for (std::size_t i = 0; i < s_->n_model; ++i) {
      sol.values[i] = y_[i] + s_->shift[i];
      obj += c_[i] * y_[i];
    }
    sol.objective = obj;
    // Record the basis for descendants — only when no (degenerate)
    // artificial is still basic, since artificial columns do not exist
    // in a child's standard form.
    bool clean = true;
    for (std::size_t r = 0; r < m_; ++r) clean = clean && basis_[r] < s_->n;
    if (clean) sol.basis = basis_;
    return sol;
  }

  const Standard* s_ = nullptr;
  std::size_t m_ = 0;
  std::size_t max_pivots_ = 0;
  Mat mat_;
  EtaFile eta_;
  std::size_t n_total_ = 0;
  std::vector<std::size_t> basis_;
  std::vector<std::uint8_t> in_basis_;
  std::vector<std::uint8_t> is_art_;
  std::vector<std::size_t> artificials_;  // column indices
  std::vector<std::size_t> art_rows_;     // rows the artificials cover
  std::vector<double> x_b_;               // current basic values (B^-1 b)
  std::vector<double> c_;                 // costs, resized over artificials
  std::vector<double> pi_;                // dual vector c_B' B^-1
  std::vector<double> rho_;               // one row of B^-1 (dual pricing)
  std::vector<double> phase1_cost_;
  std::vector<double> y_;
  std::vector<std::uint8_t> seen_;
  std::vector<std::uint8_t> row_done_;
  std::vector<std::size_t> refactor_basis_;
  bool phase2_ = false;
  bool refactor_failed_ = false;
  std::size_t pivots_done_ = 0;
  std::size_t since_refactor_ = 0;
};

/// Per-thread reusable solve state. Thread-local rather than shared:
/// branch-and-bound solves nodes concurrently on the pool, and the
/// whole point is to never touch the allocator on the hot path.
struct LpWorkspace {
  Standard std_form;
  BuildScratch build;
  Engine<SparseMatrix> revised;
  Engine<DenseMatrix> dense;
};

LpWorkspace& workspace() {
  thread_local LpWorkspace ws;
  return ws;
}

template <class Mat>
Solution solve_with(Engine<Mat>& engine, const Standard& std_form, const Model& model,
                    const LpOptions& options) {
  if (!options.warm_basis.empty()) {
    Solution sol;
    if (engine.solve_warm(std_form, model, options.warm_basis, options.max_pivots, sol)) {
      return sol;
    }
  }
  return engine.solve(std_form, model, options.max_pivots);
}

}  // namespace

Solution solve_lp(const Model& model, const LpOptions& options) {
  LpWorkspace& ws = workspace();
  build_standard(model, options, ws.std_form, ws.build);
  if (options.algorithm == LpAlgorithm::kDense) {
    return solve_with(ws.dense, ws.std_form, model, options);
  }
  return solve_with(ws.revised, ws.std_form, model, options);
}

}  // namespace clara::ilp
