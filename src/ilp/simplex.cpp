#include "ilp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace clara::ilp {

namespace {

constexpr double kEps = 1e-9;

/// Standard-form problem: minimize c'y subject to A y = b, y >= 0,
/// built from the model by shifting variables to zero lower bounds,
/// adding upper-bound rows, and introducing slack/surplus/artificial
/// columns.
struct Standard {
  std::size_t n_model = 0;   // original variable count
  std::size_t n = 0;         // total columns
  std::size_t m = 0;         // rows
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  std::vector<double> c;
  std::vector<std::size_t> artificials;  // column indices
  std::vector<double> shift;             // y_i = x_i - lo_i for model vars
  double obj_const = 0.0;
  bool infeasible_bounds = false;
};

Standard build_standard(const Model& model, const LpOptions& options) {
  Standard s;
  s.n_model = model.num_vars();

  std::vector<double> lo(s.n_model), hi(s.n_model);
  for (std::size_t i = 0; i < s.n_model; ++i) {
    const auto& v = model.variables()[i];
    lo[i] = options.lo_override.empty() ? v.lo : options.lo_override[i];
    hi[i] = options.hi_override.empty() ? v.hi : options.hi_override[i];
    if (lo[i] > hi[i] + kEps) s.infeasible_bounds = true;
  }
  if (s.infeasible_bounds) return s;

  s.shift = lo;

  // Row construction: model constraints (with senses) then upper-bound
  // rows for variables with finite hi.
  struct Row {
    std::vector<double> coefs;
    Sense sense;
    double rhs;
  };
  std::vector<Row> rows;
  for (const auto& con : model.constraints()) {
    Row row;
    row.coefs = con.expr.dense(s.n_model);
    row.sense = con.sense;
    row.rhs = con.rhs - con.expr.constant();
    // Shift variables: Σ a_i (y_i + lo_i) ⋈ rhs.
    for (std::size_t i = 0; i < s.n_model; ++i) row.rhs -= row.coefs[i] * lo[i];
    rows.push_back(std::move(row));
  }
  for (std::size_t i = 0; i < s.n_model; ++i) {
    if (hi[i] == kInf) continue;
    Row row;
    row.coefs.assign(s.n_model, 0.0);
    row.coefs[i] = 1.0;
    row.sense = Sense::kLe;
    row.rhs = hi[i] - lo[i];
    rows.push_back(std::move(row));
  }

  s.m = rows.size();
  // Columns: model vars + one slack/surplus per inequality + artificials
  // (added below as needed).
  std::size_t extra = 0;
  for (const auto& row : rows) {
    if (row.sense != Sense::kEq) ++extra;
  }
  s.n = s.n_model + extra;

  s.a.assign(s.m, std::vector<double>(s.n, 0.0));
  s.b.assign(s.m, 0.0);
  std::size_t slack_col = s.n_model;
  for (std::size_t r = 0; r < s.m; ++r) {
    auto row = rows[r];
    // Normalize to non-negative rhs.
    if (row.rhs < 0) {
      for (auto& cval : row.coefs) cval = -cval;
      row.rhs = -row.rhs;
      if (row.sense == Sense::kLe) {
        row.sense = Sense::kGe;
      } else if (row.sense == Sense::kGe) {
        row.sense = Sense::kLe;
      }
    }
    for (std::size_t i = 0; i < s.n_model; ++i) s.a[r][i] = row.coefs[i];
    s.b[r] = row.rhs;
    if (row.sense == Sense::kLe) {
      s.a[r][slack_col++] = 1.0;
    } else if (row.sense == Sense::kGe) {
      s.a[r][slack_col++] = -1.0;
    }
    rows[r] = std::move(row);
  }

  // Objective over shifted variables.
  s.c.assign(s.n, 0.0);
  const auto obj = model.objective().dense(s.n_model);
  s.obj_const = model.objective().constant();
  for (std::size_t i = 0; i < s.n_model; ++i) {
    s.c[i] = obj[i];
    s.obj_const += obj[i] * lo[i];
  }

  // Artificial variables for every row (simplest correct phase-1 start;
  // slack columns double as basis where possible via the initial basis
  // detection in the tableau).
  return s;
}

/// Tableau-based simplex on the standard form. Maintains an explicit
/// basis; phase 1 minimizes artificial sum, phase 2 the true objective.
class Tableau {
 public:
  Tableau(Standard std_form, std::size_t max_pivots)
      : s_(std::move(std_form)), max_pivots_(max_pivots) {}

  Solution solve(const Model& model) {
    Solution sol = solve_impl(model);
    sol.pivots = pivots_done_;
    return sol;
  }

  /// Warm-started solve: pivot into `warm` (a parent-optimal basis),
  /// repair primal feasibility with dual simplex, then finish with
  /// primal phase 2 — phase 1 and its artificials are skipped entirely.
  /// Returns false (tableau left in an undefined state, caller must
  /// fall back to a cold solve) when the basis is structurally
  /// incompatible or numerically singular.
  bool solve_warm(const Model& model, const std::vector<std::size_t>& warm, Solution& out) {
    if (s_.infeasible_bounds || warm.size() != s_.m) return false;
    std::vector<bool> seen(s_.n, false);
    for (const auto j : warm) {
      if (j >= s_.n || seen[j]) return false;
      seen[j] = true;
    }

    // Gauss-Jordan into the warm basis: for each basis column pick the
    // still-unassigned row with the largest pivot magnitude.
    const std::size_t m = s_.m;
    basis_.assign(m, ~std::size_t{0});
    std::vector<bool> row_done(m, false);
    for (const auto j : warm) {
      std::size_t best_r = ~std::size_t{0};
      double best_abs = 1e-7;  // tighter than kEps: a near-singular basis is not worth keeping
      for (std::size_t r = 0; r < m; ++r) {
        if (row_done[r]) continue;
        const double mag = std::abs(s_.a[r][j]);
        if (mag > best_abs) {
          best_abs = mag;
          best_r = r;
        }
      }
      if (best_r == ~std::size_t{0}) return false;  // singular under this basis
      pivot(best_r, j);
      row_done[best_r] = true;
    }

    // The parent basis is dual-feasible here (branching is an rhs-only
    // change: bound overrides move `shift` and upper-bound rows, and the
    // sign-normalization is a row rescaling that reduced costs do not
    // see), so dual simplex restores b >= 0 without phase 1.
    auto status = dual_run();
    phase2_ = true;
    if (status == SolveStatus::kOptimal) status = run(s_.c, s_.n);
    out = extract(model, status);
    out.pivots = pivots_done_;
    return true;
  }

 private:
  Solution solve_impl(const Model& model) {
    Solution sol;
    if (s_.infeasible_bounds) {
      sol.status = SolveStatus::kInfeasible;
      return sol;
    }

    const std::size_t m = s_.m;
    // Add artificial columns for rows lacking an obvious basic column.
    basis_.assign(m, ~std::size_t{0});
    // A slack column with +1 in exactly this row and rhs >= 0 can start
    // in the basis.
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t j = s_.n_model; j < s_.n; ++j) {
        if (s_.a[r][j] == 1.0) {
          bool clean = true;
          for (std::size_t r2 = 0; r2 < m; ++r2) {
            if (r2 != r && s_.a[r2][j] != 0.0) {
              clean = false;
              break;
            }
          }
          if (clean) {
            basis_[r] = j;
            break;
          }
        }
      }
    }
    std::size_t n_total = s_.n;
    for (std::size_t r = 0; r < m; ++r) {
      if (basis_[r] != ~std::size_t{0}) continue;
      for (auto& row : s_.a) row.push_back(0.0);
      s_.a[r][n_total] = 1.0;
      s_.artificials.push_back(n_total);
      basis_[r] = n_total;
      ++n_total;
    }
    s_.c.resize(n_total, 0.0);

    // Phase 1.
    if (!s_.artificials.empty()) {
      std::vector<double> phase1_cost(n_total, 0.0);
      for (const auto j : s_.artificials) phase1_cost[j] = 1.0;
      const auto status = run(phase1_cost, n_total);
      if (status != SolveStatus::kOptimal) {
        sol.status = status == SolveStatus::kUnbounded ? SolveStatus::kInfeasible : status;
        return sol;
      }
      double art_sum = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        if (std::find(s_.artificials.begin(), s_.artificials.end(), basis_[r]) != s_.artificials.end()) {
          art_sum += s_.b[r];
        }
      }
      if (art_sum > 1e-7) {
        sol.status = SolveStatus::kInfeasible;
        return sol;
      }
      // Pivot remaining (degenerate) artificials out of the basis.
      for (std::size_t r = 0; r < m; ++r) {
        if (std::find(s_.artificials.begin(), s_.artificials.end(), basis_[r]) == s_.artificials.end()) continue;
        bool pivoted = false;
        for (std::size_t j = 0; j < s_.n && !pivoted; ++j) {
          const bool is_art = std::find(s_.artificials.begin(), s_.artificials.end(), j) != s_.artificials.end();
          if (is_art) continue;
          if (std::abs(s_.a[r][j]) > kEps) {
            pivot(r, j);
            pivoted = true;
          }
        }
        // A row with no pivotable column is all-zero: redundant; the
        // artificial stays basic at value 0, which is harmless.
      }
    }

    // Phase 2: forbid artificials from re-entering by pricing them +inf
    // (practically: skip them as entering candidates inside run()).
    phase2_ = true;
    return extract(model, run(s_.c, n_total));
  }

  Solution extract(const Model& model, SolveStatus status) {
    Solution sol;
    sol.status = status;
    if (status != SolveStatus::kOptimal) return sol;
    const std::size_t n_total = s_.a.empty() ? s_.n : s_.a[0].size();
    std::vector<double> y(n_total, 0.0);
    for (std::size_t r = 0; r < s_.m; ++r) y[basis_[r]] = s_.b[r];
    sol.values.assign(model.num_vars(), 0.0);
    double obj = s_.obj_const;
    for (std::size_t i = 0; i < s_.n_model; ++i) {
      sol.values[i] = y[i] + s_.shift[i];
      obj += s_.c[i] * y[i];
    }
    sol.objective = obj;
    // Record the basis for descendants — only when no (degenerate)
    // artificial is still basic, since artificial columns do not exist
    // in a child's standard form.
    bool clean = true;
    for (std::size_t r = 0; r < s_.m; ++r) clean = clean && basis_[r] < s_.n;
    if (clean) sol.basis = basis_;
    return sol;
  }

  /// Dual simplex. Precondition: reduced costs >= 0 (dual feasibility);
  /// drives b >= 0 while keeping them so. Leaving row: smallest index
  /// with b < -eps (Bland-safe); entering: minimum ratio
  /// reduced_j / |a[row][j]| over a[row][j] < -eps. A row with no
  /// negative coefficient proves primal infeasibility.
  SolveStatus dual_run() {
    std::size_t pivots = 0;
    while (true) {
      if (++pivots > max_pivots_) return SolveStatus::kLimit;
      std::size_t row = ~std::size_t{0};
      for (std::size_t r = 0; r < s_.m; ++r) {
        if (s_.b[r] < -kEps) {
          row = r;
          break;
        }
      }
      if (row == ~std::size_t{0}) return SolveStatus::kOptimal;
      std::size_t entering = ~std::size_t{0};
      double best_ratio = kInf;
      // Basic columns are unit vectors with a zero in `row` (or +1 for
      // the row's own basis column), so they never qualify as entering.
      for (std::size_t j = 0; j < s_.n; ++j) {
        if (s_.a[row][j] >= -kEps) continue;
        double reduced = s_.c[j];
        for (std::size_t r = 0; r < s_.m; ++r) reduced -= s_.c[basis_[r]] * s_.a[r][j];
        const double ratio = std::max(0.0, reduced) / -s_.a[row][j];
        if (ratio < best_ratio - kEps) {
          best_ratio = ratio;
          entering = j;
        }
      }
      if (entering == ~std::size_t{0}) return SolveStatus::kInfeasible;
      pivot(row, entering);
    }
  }

  void pivot(std::size_t row, std::size_t col) {
    ++pivots_done_;
    const double p = s_.a[row][col];
    assert(std::abs(p) > kEps);
    const std::size_t n_total = s_.a[row].size();
    for (std::size_t j = 0; j < n_total; ++j) s_.a[row][j] /= p;
    s_.b[row] /= p;
    for (std::size_t r = 0; r < s_.m; ++r) {
      if (r == row) continue;
      const double factor = s_.a[r][col];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t j = 0; j < n_total; ++j) s_.a[r][j] -= factor * s_.a[row][j];
      s_.b[r] -= factor * s_.b[row];
    }
    basis_[row] = col;
  }

  SolveStatus run(const std::vector<double>& cost, std::size_t n_total) {
    std::size_t pivots = 0;
    while (true) {
      if (++pivots > max_pivots_) return SolveStatus::kLimit;

      // Reduced costs: r_j = c_j - c_B' B^-1 A_j. With an explicit
      // tableau, B^-1 A is s_.a itself, so r_j = c_j - Σ_r c_basis[r] a[r][j].
      std::size_t entering = ~std::size_t{0};
      for (std::size_t j = 0; j < n_total; ++j) {
        if (phase2_ &&
            std::find(s_.artificials.begin(), s_.artificials.end(), j) != s_.artificials.end()) {
          continue;
        }
        bool basic = false;
        for (std::size_t r = 0; r < s_.m; ++r) {
          if (basis_[r] == j) {
            basic = true;
            break;
          }
        }
        if (basic) continue;
        double reduced = cost[j];
        for (std::size_t r = 0; r < s_.m; ++r) reduced -= cost[basis_[r]] * s_.a[r][j];
        if (reduced < -1e-8) {
          entering = j;  // Bland: first improving index
          break;
        }
      }
      if (entering == ~std::size_t{0}) return SolveStatus::kOptimal;

      // Ratio test (Bland: smallest basis index breaks ties).
      std::size_t leaving = ~std::size_t{0};
      double best_ratio = kInf;
      for (std::size_t r = 0; r < s_.m; ++r) {
        if (s_.a[r][entering] > kEps) {
          const double ratio = s_.b[r] / s_.a[r][entering];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && (leaving == ~std::size_t{0} || basis_[r] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == ~std::size_t{0}) return SolveStatus::kUnbounded;
      pivot(leaving, entering);
    }
  }

  Standard s_;
  std::size_t max_pivots_;
  std::vector<std::size_t> basis_;
  bool phase2_ = false;
  std::size_t pivots_done_ = 0;
};

}  // namespace

Solution solve_lp(const Model& model, const LpOptions& options) {
  Standard std_form = build_standard(model, options);
  if (!options.warm_basis.empty()) {
    Tableau warm(std_form, options.max_pivots);  // copy: cold fallback needs a pristine tableau
    Solution sol;
    if (warm.solve_warm(model, options.warm_basis, sol)) return sol;
  }
  Tableau tableau(std::move(std_form), options.max_pivots);
  return tableau.solve(model);
}

}  // namespace clara::ilp
