#include "ilp/model.hpp"

#include <cassert>

namespace clara::ilp {

LinExpr& LinExpr::operator+=(const LinExpr& other) {
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
  constant_ += other.constant_;
  return *this;
}

std::vector<double> LinExpr::dense(std::size_t n) const {
  std::vector<double> out(n, 0.0);
  for (const auto& t : terms_) {
    assert(t.var >= 0 && static_cast<std::size_t>(t.var) < n);
    out[static_cast<std::size_t>(t.var)] += t.coef;
  }
  return out;
}

int Model::add_continuous(std::string name, double lo, double hi) {
  assert(lo <= hi);
  vars_.push_back({std::move(name), VarKind::kContinuous, lo, hi});
  return static_cast<int>(vars_.size() - 1);
}

int Model::add_binary(std::string name) {
  vars_.push_back({std::move(name), VarKind::kBinary, 0.0, 1.0});
  return static_cast<int>(vars_.size() - 1);
}

int Model::add_integer(std::string name, double lo, double hi) {
  assert(lo <= hi);
  vars_.push_back({std::move(name), VarKind::kInteger, lo, hi});
  return static_cast<int>(vars_.size() - 1);
}

void Model::add_constraint(LinExpr expr, Sense sense, double rhs, std::string name) {
  constraints_.push_back({std::move(expr), sense, rhs, std::move(name)});
}

bool Model::has_integers() const {
  for (const auto& v : vars_) {
    if (v.kind != VarKind::kContinuous) return true;
  }
  return false;
}

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kLimit: return "limit";
  }
  return "?";
}

}  // namespace clara::ilp
