// Synthetic MILP instances shared by benchmarks and the CLI.
//
// bench/perf_micro and `clara bench milp_branch_and_bound` must time the
// *same* model for their numbers to be comparable, so the instance
// generator lives here rather than in either binary.
#pragma once

#include <cstdint>

#include "ilp/model.hpp"

namespace clara::ilp {

/// A market-split instance (Cornuéjols–Dawande): n binaries, m equality
/// rows a·x + s - t = floor(sum/2) with uniform coefficients in [0,100),
/// minimizing Σ(s + t). The LP bound is 0 while the integer optimum
/// rarely is, so branch-and-bound genuinely branches — hard enough to
/// keep many waves busy at small sizes. Deterministic in (n, m, seed).
Model make_market_split(int n, int m, std::uint64_t seed = 12345);

}  // namespace clara::ilp
