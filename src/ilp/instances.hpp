// Synthetic MILP instances shared by benchmarks and the CLI.
//
// bench/perf_micro and `clara bench milp_branch_and_bound` must time the
// *same* model for their numbers to be comparable, so the instance
// generator lives here rather than in either binary.
#pragma once

#include <cstdint>

#include "ilp/model.hpp"

namespace clara::ilp {

/// A market-split instance (Cornuéjols–Dawande): n binaries, m equality
/// rows a·x + s - t = floor(sum/2) with uniform coefficients in [0,100),
/// minimizing Σ(s + t). The LP bound is 0 while the integer optimum
/// rarely is, so branch-and-bound genuinely branches — hard enough to
/// keep many waves busy at small sizes. Deterministic in (n, m, seed).
Model make_market_split(int n, int m, std::uint64_t seed = 12345);

/// A 0/1 knapsack with m side capacities: n binaries with values in
/// [1,100) and per-dimension weights in [1,50), each dimension capped at
/// 40% of its total weight. Dense kLe rows (every slack can start
/// basic), the structural opposite of market-split's equality rows —
/// exercises the phase-1-free cold-start path. Deterministic in
/// (n, m, seed).
Model make_knapsack(int n, int m, std::uint64_t seed = 6789);

/// An n×n assignment problem with integer-valued costs in [0,100) and a
/// light quadratic tilt that makes the LP optimum non-degenerate. Pure
/// equality structure where the LP relaxation is already integral, so
/// branch-and-bound usually finishes at the root — exercises phase 1
/// with many artificials. Deterministic in (n, seed).
Model make_assignment(int n, std::uint64_t seed = 4242);

}  // namespace clara::ilp
