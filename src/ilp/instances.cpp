#include "ilp/instances.hpp"

#include <cmath>
#include <vector>

namespace clara::ilp {

Model make_market_split(int n, int m, std::uint64_t seed) {
  Model model;
  std::uint64_t state = seed;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 33) % 100);
  };
  std::vector<int> x;
  for (int j = 0; j < n; ++j) x.push_back(model.add_binary("x"));
  LinExpr objective;
  for (int i = 0; i < m; ++i) {
    LinExpr row;
    double sum = 0.0;
    for (int j = 0; j < n; ++j) {
      const double a = next();
      row.add(x[j], a);
      sum += a;
    }
    // a·x + s - t = floor(sum/2); minimize Σ(s + t).
    const int s = model.add_continuous("s");
    const int t = model.add_continuous("t");
    row.add(s, 1.0);
    row.add(t, -1.0);
    model.add_constraint(std::move(row), Sense::kEq, std::floor(sum / 2.0));
    objective.add(s, 1.0);
    objective.add(t, 1.0);
  }
  model.set_objective(std::move(objective));
  return model;
}

}  // namespace clara::ilp
