#include "ilp/instances.hpp"

#include <cmath>
#include <vector>

namespace clara::ilp {

Model make_market_split(int n, int m, std::uint64_t seed) {
  Model model;
  std::uint64_t state = seed;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 33) % 100);
  };
  std::vector<int> x;
  for (int j = 0; j < n; ++j) x.push_back(model.add_binary("x"));
  LinExpr objective;
  for (int i = 0; i < m; ++i) {
    LinExpr row;
    double sum = 0.0;
    for (int j = 0; j < n; ++j) {
      const double a = next();
      row.add(x[j], a);
      sum += a;
    }
    // a·x + s - t = floor(sum/2); minimize Σ(s + t).
    const int s = model.add_continuous("s");
    const int t = model.add_continuous("t");
    row.add(s, 1.0);
    row.add(t, -1.0);
    model.add_constraint(std::move(row), Sense::kEq, std::floor(sum / 2.0));
    objective.add(s, 1.0);
    objective.add(t, 1.0);
  }
  model.set_objective(std::move(objective));
  return model;
}

Model make_knapsack(int n, int m, std::uint64_t seed) {
  Model model;
  std::uint64_t state = seed;
  const auto next = [&state](double span, double base) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return base + static_cast<double>((state >> 33) % static_cast<std::uint64_t>(span));
  };
  std::vector<int> x;
  LinExpr objective;
  for (int j = 0; j < n; ++j) {
    x.push_back(model.add_binary("x"));
    // Maximize value == minimize its negation.
    objective.add(x[static_cast<std::size_t>(j)], -next(99.0, 1.0));
  }
  for (int i = 0; i < m; ++i) {
    LinExpr row;
    double total = 0.0;
    for (int j = 0; j < n; ++j) {
      const double w = next(49.0, 1.0);
      row.add(x[static_cast<std::size_t>(j)], w);
      total += w;
    }
    model.add_constraint(std::move(row), Sense::kLe, std::floor(0.4 * total));
  }
  model.set_objective(std::move(objective));
  return model;
}

Model make_assignment(int n, std::uint64_t seed) {
  Model model;
  std::uint64_t state = seed;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 33) % 100);
  };
  std::vector<std::vector<int>> x(static_cast<std::size_t>(n));
  LinExpr objective;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const int v = model.add_binary("a");
      x[static_cast<std::size_t>(i)].push_back(v);
      // The (i*j)/n tilt breaks cost ties so the optimal vertex is
      // unique and both engines land on it without degenerate wander.
      objective.add(v, next() + static_cast<double>(i * j) / static_cast<double>(n));
    }
  }
  for (int i = 0; i < n; ++i) {
    LinExpr row;
    for (int j = 0; j < n; ++j) row.add(x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0);
    model.add_constraint(std::move(row), Sense::kEq, 1.0);
  }
  for (int j = 0; j < n; ++j) {
    LinExpr col;
    for (int i = 0; i < n; ++i) col.add(x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0);
    model.add_constraint(std::move(col), Sense::kEq, 1.0);
  }
  model.set_objective(std::move(objective));
  return model;
}

}  // namespace clara::ilp
