#include "nf/nf_cir.hpp"

#include "cir/builder.hpp"

namespace clara::nf {

using cir::FunctionBuilder;
using cir::HdrField;
using cir::StateObject;
using cir::StatePattern;
using cir::SymExpr;
using cir::Value;
using cir::VCall;

namespace {
Value imm(std::int64_t v) { return Value::of_imm(v); }
}  // namespace

cir::Function build_lpm_nf(const LpmConfig& config) {
  FunctionBuilder b("lpm");
  const auto routes = b.add_state(StateObject{"routes", 16, config.rules, StatePattern::kArray});

  const auto entry = b.create_block("entry");
  b.set_insert_point(entry);
  b.call("rte_pktmbuf_mtod", {}, false);  // DPDK parse idiom
  const Value dst = b.get_hdr(HdrField::kDstIp);
  // rte_lpm_lookup(table, ip [, flow-cache flag filled by substitution]).
  const Value nh = b.call("rte_lpm_lookup",
                          {imm(static_cast<std::int64_t>(routes)), dst,
                           imm(config.use_flow_cache ? 1 : 0)});
  b.set_hdr(HdrField::kDstPort, nh);  // stash next-hop in metadata
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();
  return b.take();
}

cir::Function build_nat_nf(const NatConfig& config) {
  FunctionBuilder b("nat");
  const auto flow_table =
      b.add_state(StateObject{"flow_table", 64, config.flow_entries, StatePattern::kHashTable});

  const auto entry = b.create_block("entry");
  const auto insert = b.create_block("insert");
  const auto translate = b.create_block("translate");

  b.set_insert_point(entry);
  b.call("rte_pktmbuf_mtod", {}, false);
  const Value hash = b.get_hdr(HdrField::kFlowHash);
  const Value hit = b.call("rte_hash_lookup", {imm(static_cast<std::int64_t>(flow_table)), hash});
  b.cond_br(hit, translate, insert);

  b.set_insert_point(insert);
  b.call("rte_hash_add_key", {imm(static_cast<std::int64_t>(flow_table)), hash, imm(1)}, false);
  b.br(translate);

  b.set_insert_point(translate);
  // Rewrite the source endpoint to the NAT'd address, then fix up the
  // L4 checksum over the payload.
  const Value src = b.get_hdr(HdrField::kSrcIp);
  const Value nat_ip = b.bxor(src, imm(0x0a0a0a0a));
  b.set_hdr(HdrField::kSrcIp, nat_ip);
  b.set_hdr(HdrField::kSrcPort, imm(4242));
  const Value len = b.get_hdr(HdrField::kPayloadLen);
  const Value ck = b.call("rte_ipv4_udptcp_cksum", {len});
  b.set_hdr(HdrField::kTcpFlags, ck);  // metadata slot standing in for the csum field
  b.call("rte_eth_tx_burst", {imm(1)}, false);
  b.ret();
  return b.take();
}

cir::Function build_fw_nf(const FwConfig& config) {
  FunctionBuilder b("firewall");
  const auto conn = b.add_state(StateObject{"conn_table", config.conn_entry_bytes, config.conn_entries,
                                            StatePattern::kHashTable});
  const auto rules = b.add_state(StateObject{"rules", 32, config.rules, StatePattern::kArray});

  const auto entry = b.create_block("entry");
  const auto established = b.create_block("established");
  const auto fresh = b.create_block("fresh");
  const auto check_rules = b.create_block("check_rules");
  const auto accept = b.create_block("accept");
  const auto reject = b.create_block("reject");

  b.set_insert_point(entry);
  b.vcall(VCall::kParse, {}, false);
  const Value hash = b.get_hdr(HdrField::kFlowHash);
  const Value hit = b.call("bpf_map_lookup_elem", {imm(static_cast<std::int64_t>(conn)), hash});
  b.cond_br(hit, established, fresh);

  b.set_insert_point(established);
  b.br(accept);

  b.set_insert_point(fresh);
  // Only TCP SYNs may open a connection.
  const Value flags = b.get_hdr(HdrField::kTcpFlags);
  const Value syn = b.band(flags, imm(1));
  b.cond_br(syn, check_rules, reject);

  b.set_insert_point(check_rules);
  const Value dport = b.get_hdr(HdrField::kDstPort);
  const Value rule = b.call("bpf_map_lookup_elem", {imm(static_cast<std::int64_t>(rules)), dport});
  // Install connection state regardless of rule verdict shape; the
  // verdict gates the accept edge.
  b.call("bpf_map_update_elem", {imm(static_cast<std::int64_t>(conn)), hash, imm(1)}, false);
  b.cond_br(rule, accept, reject);

  b.set_insert_point(accept);
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();

  b.set_insert_point(reject);
  b.vcall(VCall::kDrop, {}, false);
  b.ret();
  return b.take();
}

cir::Function build_dpi_nf() {
  FunctionBuilder b("dpi");

  const auto entry = b.create_block("entry");
  const auto loop = b.create_block("scan_loop");
  const auto check = b.create_block("check");
  const auto pass = b.create_block("pass");
  const auto alarm = b.create_block("alarm");

  b.set_insert_point(entry);
  b.vcall(VCall::kParse, {}, false);
  const Value len = b.get_hdr(HdrField::kPayloadLen);
  const Value have = b.cmp_gt(len, imm(0));
  b.cond_br(have, loop, pass);

  // Explicit byte-scan loop: load each payload byte, compare against the
  // signature byte, accumulate a match flag. The idiom matcher collapses
  // this block to vcall_payload_scan(len).
  b.set_insert_point(loop);
  const Value i = b.phi();
  const Value acc = b.phi();
  const Value byte = b.load_packet(i);
  const Value is_sig = b.cmp_eq(byte, imm(0x47));
  const Value acc1 = b.bor(acc, is_sig);
  const Value i1 = b.add(i, imm(1));
  const Value more = b.cmp_lt(i1, len);
  b.cond_br(more, loop, check);
  b.add_incoming(i, imm(0), entry);
  b.add_incoming(i, i1, loop);
  b.add_incoming(acc, imm(0), entry);
  b.add_incoming(acc, acc1, loop);
  b.set_trip(loop, SymExpr::of_param("payload_len"));

  b.set_insert_point(check);
  b.cond_br(acc1, alarm, pass);

  b.set_insert_point(pass);
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();

  b.set_insert_point(alarm);
  b.vcall(VCall::kDrop, {}, false);
  b.ret();
  return b.take();
}

cir::Function build_hh_nf(const HhConfig& config) {
  FunctionBuilder b("heavy_hitter");
  const auto counters = b.add_state(StateObject{"counters", 32, config.counters, StatePattern::kHashTable});

  const auto entry = b.create_block("entry");
  const auto flag = b.create_block("flag");
  const auto out = b.create_block("out");

  b.set_insert_point(entry);
  b.vcall(VCall::kParse, {}, false);
  const Value hash = b.get_hdr(HdrField::kFlowHash);
  b.vcall(VCall::kStatsUpdate, {imm(static_cast<std::int64_t>(counters)), hash}, false);
  const Value count = b.load_state(counters, hash);
  const Value heavy = b.cmp_gt(count, imm(1000));
  b.cond_br(heavy, flag, out);

  b.set_insert_point(flag);
  b.set_hdr(HdrField::kTcpFlags, imm(0x80));  // mark as heavy in metadata
  b.br(out);

  b.set_insert_point(out);
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();
  return b.take();
}

cir::Function build_meter_nf(const MeterConfig& config) {
  FunctionBuilder b("meter");
  const auto buckets = b.add_state(StateObject{"buckets", 32, config.buckets, StatePattern::kHashTable});

  const auto entry = b.create_block("entry");
  const auto ok = b.create_block("conform");
  const auto exceed = b.create_block("exceed");

  b.set_insert_point(entry);
  b.vcall(VCall::kParse, {}, false);
  const Value hash = b.get_hdr(HdrField::kFlowHash);
  const Value verdict =
      b.call("rte_meter_srtcm_color_blind_check", {imm(static_cast<std::int64_t>(buckets)), hash});
  b.cond_br(verdict, ok, exceed);

  b.set_insert_point(ok);
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();

  b.set_insert_point(exceed);
  b.vcall(VCall::kDrop, {}, false);
  b.ret();
  return b.take();
}

cir::Function build_flowstats_nf(const FlowStatsConfig& config) {
  FunctionBuilder b("flow_stats");
  const auto stats = b.add_state(StateObject{"stats", 32, config.entries, StatePattern::kHashTable});

  const auto entry = b.create_block("entry");
  b.set_insert_point(entry);
  b.vcall(VCall::kParse, {}, false);
  const Value hash = b.get_hdr(HdrField::kFlowHash);
  b.vcall(VCall::kStatsUpdate, {imm(static_cast<std::int64_t>(stats)), hash}, false);   // packet count
  const Value len = b.get_hdr(HdrField::kPktLen);
  const Value byte_key = b.add(hash, imm(1));
  b.vcall(VCall::kStatsUpdate, {imm(static_cast<std::int64_t>(stats)), byte_key}, false);  // byte count
  b.set_hdr(HdrField::kTcpFlags, len);
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();
  return b.take();
}

cir::Function build_rewrite_nf() {
  FunctionBuilder b("rewrite");
  const auto entry = b.create_block("entry");
  b.set_insert_point(entry);
  b.call("click_network_header", {}, false);  // Click parse idiom
  const Value dst = b.get_hdr(HdrField::kDstIp);
  const Value rewritten = b.bxor(dst, imm(0x01010101));
  b.call("click_set_ip_header", {imm(static_cast<std::int64_t>(HdrField::kDstIp)), rewritten}, false);
  b.set_hdr(HdrField::kSrcPort, imm(8080));
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();
  return b.take();
}

cir::Function build_vnf_chain(const VnfConfig& config) {
  FunctionBuilder b("vnf_chain");
  const auto meters = b.add_state(StateObject{"meters", 32, config.meter_buckets, StatePattern::kHashTable});
  const auto stats = b.add_state(StateObject{"flow_stats", 32, config.stats_entries, StatePattern::kHashTable});

  const auto entry = b.create_block("entry");
  const auto loop = b.create_block("dpi_loop");
  const auto meter_blk = b.create_block("meter");
  const auto modify = b.create_block("modify");
  const auto exceed = b.create_block("exceed");

  // Stage 1: parse + DPI scan (explicit loop, as in the original C).
  b.set_insert_point(entry);
  b.vcall(VCall::kParse, {}, false);
  const Value len = b.get_hdr(HdrField::kPayloadLen);
  const Value have = b.cmp_gt(len, imm(0));
  b.cond_br(have, loop, meter_blk);

  b.set_insert_point(loop);
  const Value i = b.phi();
  const Value byte = b.load_packet(i);
  const Value tmp = b.bxor(byte, imm(0x5a));
  const Value i1 = b.add(i, imm(1));
  const Value more = b.cmp_lt(i1, len);
  (void)tmp;
  b.cond_br(more, loop, meter_blk);
  b.add_incoming(i, imm(0), entry);
  b.add_incoming(i, i1, loop);
  b.set_trip(loop, SymExpr::of_param("payload_len"));

  // Stage 2: metering.
  b.set_insert_point(meter_blk);
  const Value hash = b.get_hdr(HdrField::kFlowHash);
  const Value verdict =
      b.call("rte_meter_srtcm_color_blind_check", {imm(static_cast<std::int64_t>(meters)), hash});
  b.cond_br(verdict, modify, exceed);

  // Stage 3+4: header modifications and flow statistics.
  b.set_insert_point(modify);
  const Value src = b.get_hdr(HdrField::kSrcIp);
  const Value marked = b.bor(src, imm(0x80000000));
  b.set_hdr(HdrField::kSrcIp, marked);
  b.set_hdr(HdrField::kDstPort, imm(9999));
  b.vcall(VCall::kStatsUpdate, {imm(static_cast<std::int64_t>(stats)), hash}, false);
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();

  b.set_insert_point(exceed);
  b.vcall(VCall::kDrop, {}, false);
  b.ret();
  return b.take();
}

cir::Function build_crypto_gw_nf(const CryptoGwConfig& config) {
  FunctionBuilder b("crypto_gw");
  const auto sa_table = b.add_state(StateObject{"sa_table", 64, config.sa_entries, StatePattern::kHashTable});

  const auto entry = b.create_block("entry");
  const auto encrypt = b.create_block("encrypt");
  const auto bypass = b.create_block("bypass");

  b.set_insert_point(entry);
  b.vcall(VCall::kParse, {}, false);
  const Value hash = b.get_hdr(HdrField::kFlowHash);
  // Security-association lookup; flows without an SA pass in the clear.
  const Value sa = b.call("bpf_map_lookup_elem", {imm(static_cast<std::int64_t>(sa_table)), hash});
  b.cond_br(sa, encrypt, bypass);

  b.set_insert_point(encrypt);
  const Value len = b.get_hdr(HdrField::kPayloadLen);
  b.call("rte_crypto_enqueue", {len}, false);
  // Tunnel header rewrite.
  b.set_hdr(HdrField::kDstIp, imm(0x0a636363));
  b.set_hdr(HdrField::kDstPort, imm(4500));
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();

  b.set_insert_point(bypass);
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();
  return b.take();
}

cir::Function build_csum_loop_nf() {
  FunctionBuilder b("csum_loop");
  const auto entry = b.create_block("entry");
  const auto loop = b.create_block("sum_loop");
  const auto out = b.create_block("out");

  b.set_insert_point(entry);
  b.vcall(VCall::kParse, {}, false);
  const Value len = b.get_hdr(HdrField::kPayloadLen);
  const Value have = b.cmp_gt(len, imm(0));
  b.cond_br(have, loop, out);

  // Checksum as an accumulation loop: add each payload byte into a
  // running sum — the csum idiom.
  b.set_insert_point(loop);
  const Value i = b.phi();
  const Value sum = b.phi();
  const Value byte = b.load_packet(i);
  const Value sum1 = b.add(sum, byte);
  const Value i1 = b.add(i, imm(1));
  const Value more = b.cmp_lt(i1, len);
  b.cond_br(more, loop, out);
  b.add_incoming(i, imm(0), entry);
  b.add_incoming(i, i1, loop);
  b.add_incoming(sum, imm(0), entry);
  b.add_incoming(sum, sum1, loop);
  b.set_trip(loop, SymExpr::of_param("payload_len"));

  b.set_insert_point(out);
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();
  return b.take();
}

cir::Function build_rate_estimator_nf() {
  FunctionBuilder b("rate_estimator");
  const auto rates = b.add_state(StateObject{"rates", 16, 8192, StatePattern::kHashTable});

  const auto entry = b.create_block("entry");
  b.set_insert_point(entry);
  b.vcall(VCall::kParse, {}, false);
  const Value hash = b.get_hdr(HdrField::kFlowHash);
  const Value old_rate = b.load_state(rates, hash);
  const Value len = b.get_hdr(HdrField::kPktLen);
  // EWMA: rate = 0.9*rate + 0.1*len — floating point on the datapath,
  // which NPU cores must emulate in software (paper §3.4).
  const Value scaled_old = b.fmul(old_rate, imm(9));
  const Value scaled_new = b.fmul(len, imm(1));
  const Value blended = b.fadd(scaled_old, scaled_new);
  b.store_state(rates, hash, blended);
  b.vcall(VCall::kEmit, {imm(1)}, false);
  b.ret();
  return b.take();
}

}  // namespace clara::nf
