#include "nf/nf_ported.hpp"

namespace clara::nf {

using cir::HdrField;
using nicsim::NicApi;

void LpmProgram::handle(NicApi& api) {
  api.parse();
  const std::uint64_t dst = api.get_hdr(HdrField::kDstIp);
  (void)dst;
  api.lpm_lookup(*routes_, api.pkt().flow_hash(), use_flow_cache_);
  api.set_hdr(HdrField::kDstPort, 1);  // stash next hop
  api.emit();
}

void NatProgram::handle(NicApi& api) {
  api.parse();
  const std::uint64_t hash = api.get_hdr(HdrField::kFlowHash);
  const bool hit = api.table_lookup(*flow_table_, hash);
  if (!hit) api.table_update(*flow_table_, hash);
  const std::uint64_t src = api.get_hdr(HdrField::kSrcIp);
  api.set_hdr(HdrField::kSrcIp, src ^ 0x0a0a0a0a);
  api.set_hdr(HdrField::kSrcPort, 4242);
  const auto len = static_cast<std::uint32_t>(api.get_hdr(HdrField::kPayloadLen));
  const std::uint64_t ck = api.csum(len, use_csum_accel_);
  api.set_hdr(HdrField::kTcpFlags, ck);
  api.emit();
}

void FwProgram::handle(NicApi& api) {
  api.parse();
  const std::uint64_t hash = api.get_hdr(HdrField::kFlowHash);
  if (api.table_lookup(*conn_table_, hash)) {
    api.emit();
    return;
  }
  const std::uint64_t flags = api.get_hdr(HdrField::kTcpFlags);
  if ((flags & 0x1) == 0) {
    api.drop();
    return;
  }
  const std::uint64_t dport = api.get_hdr(HdrField::kDstPort);
  api.table_lookup(*rules_, dport);  // rule check (verdict modeled permissive)
  api.table_update(*conn_table_, hash);
  api.emit();
}

void DpiProgram::handle(NicApi& api) {
  api.parse();
  const std::uint64_t len = api.get_hdr(HdrField::kPayloadLen);
  if (len > 0) api.payload_scan();
  api.emit();
}

void HhProgram::handle(NicApi& api) {
  api.parse();
  const std::uint64_t hash = api.get_hdr(HdrField::kFlowHash);
  api.stats_update(*counters_, hash);
  // Threshold check reads the counter back.
  const auto plan = counters_->lookup(hash);
  api.mem_read(counters_->placement(), plan.addr0);
  api.set_hdr(HdrField::kTcpFlags, 0x80);
  api.emit();
}

void MeterProgram::handle(NicApi& api) {
  api.parse();
  const std::uint64_t hash = api.get_hdr(HdrField::kFlowHash);
  api.meter(*buckets_, hash);
  api.emit();
}

void FlowStatsProgram::handle(NicApi& api) {
  api.parse();
  const std::uint64_t hash = api.get_hdr(HdrField::kFlowHash);
  api.stats_update(*stats_, hash);
  const std::uint64_t len = api.get_hdr(HdrField::kPktLen);
  api.stats_update(*stats_, hash + 1);
  api.set_hdr(HdrField::kTcpFlags, len);
  api.emit();
}

void RewriteProgram::handle(NicApi& api) {
  api.parse();
  const std::uint64_t dst = api.get_hdr(HdrField::kDstIp);
  api.set_hdr(HdrField::kDstIp, dst ^ 0x01010101);
  api.set_hdr(HdrField::kSrcPort, 8080);
  api.emit();
}

void CryptoGwProgram::handle(NicApi& api) {
  api.parse();
  const std::uint64_t hash = api.get_hdr(HdrField::kFlowHash);
  const bool has_sa = api.table_lookup(*sa_table_, hash);
  if (has_sa) {
    const auto len = static_cast<std::uint32_t>(api.get_hdr(HdrField::kPayloadLen));
    api.crypto(len, use_crypto_accel_);
    api.set_hdr(HdrField::kDstIp, 0x0a636363);
    api.set_hdr(HdrField::kDstPort, 4500);
  }
  api.emit();
}

void VnfProgram::handle(NicApi& api) {
  api.parse();
  const std::uint64_t len = api.get_hdr(HdrField::kPayloadLen);
  if (len > 0) api.payload_scan();
  const std::uint64_t hash = api.get_hdr(HdrField::kFlowHash);
  api.meter(*meters_, hash);
  const std::uint64_t src = api.get_hdr(HdrField::kSrcIp);
  api.set_hdr(HdrField::kSrcIp, src | 0x80000000);
  api.set_hdr(HdrField::kDstPort, 9999);
  api.stats_update(*stats_, hash);
  api.emit();
}

}  // namespace clara::nf
