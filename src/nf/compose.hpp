// NF chain composition.
//
// The paper's VNF workload is "a function chain that includes DPI,
// metering, header modifications, and flow statistics". Operators build
// such chains from individual elements (Click's whole premise); this
// utility composes CIR functions the same way: the packets a stage
// *emits* flow into the next stage, drops terminate the chain.
//
// Mechanically: stage k's `vcall_emit; ret` exits are rewritten into
// branches to stage k+1's entry; blocks, registers and state-object
// indices of later stages are re-based. Only the final stage's emits
// leave the chain. The result is a single verified CIR function that
// the analyzer treats like any other NF — per-stage mapping decisions
// (e.g. this stage's lookup on the LPM engine, that one's checksum on
// the accelerator) fall out of the ILP as usual.
#pragma once

#include <string>
#include <vector>

#include "cir/function.hpp"
#include "common/result.hpp"

namespace clara::nf {

/// Composes the stages into one function named `name`. Fails when a
/// stage has no emit (nothing would flow onward) — except the last, or
/// when any stage fails verification.
Result<cir::Function> compose_chain(const std::string& name, const std::vector<cir::Function>& stages);

}  // namespace clara::nf
