// Hand-ported NF implementations for the simulator — the paper's
// "manually ported to Netronome using its development toolkits"
// baselines (§4). Each mirrors the corresponding CIR builder in
// nf_cir.hpp, with the hand-tuning knobs Figure 1 varies exposed as
// constructor parameters (accelerator use, memory placement, flow-cache
// use).
#pragma once

#include "nicsim/sim.hpp"

namespace clara::nf {

class LpmProgram final : public nicsim::NicProgram {
 public:
  LpmProgram(nicsim::LpmTable& routes, bool use_flow_cache)
      : routes_(&routes), use_flow_cache_(use_flow_cache) {}
  void handle(nicsim::NicApi& api) override;
  [[nodiscard]] std::string name() const override { return "lpm"; }

 private:
  nicsim::LpmTable* routes_;
  bool use_flow_cache_;
};

class NatProgram final : public nicsim::NicProgram {
 public:
  NatProgram(nicsim::ExactTable& flow_table, bool use_csum_accel)
      : flow_table_(&flow_table), use_csum_accel_(use_csum_accel) {}
  void handle(nicsim::NicApi& api) override;
  [[nodiscard]] std::string name() const override { return "nat"; }

 private:
  nicsim::ExactTable* flow_table_;
  bool use_csum_accel_;
};

class FwProgram final : public nicsim::NicProgram {
 public:
  FwProgram(nicsim::ExactTable& conn_table, nicsim::ExactTable& rules)
      : conn_table_(&conn_table), rules_(&rules) {}
  void handle(nicsim::NicApi& api) override;
  [[nodiscard]] std::string name() const override { return "firewall"; }

 private:
  nicsim::ExactTable* conn_table_;
  nicsim::ExactTable* rules_;
};

class DpiProgram final : public nicsim::NicProgram {
 public:
  void handle(nicsim::NicApi& api) override;
  [[nodiscard]] std::string name() const override { return "dpi"; }
};

class HhProgram final : public nicsim::NicProgram {
 public:
  explicit HhProgram(nicsim::ExactTable& counters) : counters_(&counters) {}
  void handle(nicsim::NicApi& api) override;
  [[nodiscard]] std::string name() const override { return "heavy_hitter"; }

 private:
  nicsim::ExactTable* counters_;
};

class MeterProgram final : public nicsim::NicProgram {
 public:
  explicit MeterProgram(nicsim::ExactTable& buckets) : buckets_(&buckets) {}
  void handle(nicsim::NicApi& api) override;
  [[nodiscard]] std::string name() const override { return "meter"; }

 private:
  nicsim::ExactTable* buckets_;
};

class FlowStatsProgram final : public nicsim::NicProgram {
 public:
  explicit FlowStatsProgram(nicsim::ExactTable& stats) : stats_(&stats) {}
  void handle(nicsim::NicApi& api) override;
  [[nodiscard]] std::string name() const override { return "flow_stats"; }

 private:
  nicsim::ExactTable* stats_;
};

class RewriteProgram final : public nicsim::NicProgram {
 public:
  void handle(nicsim::NicApi& api) override;
  [[nodiscard]] std::string name() const override { return "rewrite"; }
};

class CryptoGwProgram final : public nicsim::NicProgram {
 public:
  CryptoGwProgram(nicsim::ExactTable& sa_table, bool use_crypto_accel)
      : sa_table_(&sa_table), use_crypto_accel_(use_crypto_accel) {}
  void handle(nicsim::NicApi& api) override;
  [[nodiscard]] std::string name() const override { return "crypto_gw"; }

 private:
  nicsim::ExactTable* sa_table_;
  bool use_crypto_accel_;
};

class VnfProgram final : public nicsim::NicProgram {
 public:
  VnfProgram(nicsim::ExactTable& meters, nicsim::ExactTable& stats) : meters_(&meters), stats_(&stats) {}
  void handle(nicsim::NicApi& api) override;
  [[nodiscard]] std::string name() const override { return "vnf_chain"; }

 private:
  nicsim::ExactTable* meters_;
  nicsim::ExactTable* stats_;
};

}  // namespace clara::nf
