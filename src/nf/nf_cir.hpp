// The NF corpus, in "unported" form — paper §4.
//
// Each builder returns the CIR a front-end would produce from the
// original C sources (DESIGN.md §6 explains why the builder is the
// front-end seam in this repository). The functions deliberately use
// framework-specific API names (DPDK for the paper's evaluation NFs,
// Click/eBPF elsewhere) so the API-substitution pass has real work to
// do, and the DPI scan is an explicit byte loop so idiom pattern
// matching has real work to do.
//
// NFs: LPM, NAT, stateful firewall, DPI, heavy-hitter detection,
// metering, flow statistics, header rewrite, and the VNF chain
// (DPI -> meter -> header modification -> flow statistics) from the
// paper's Figure 3(b).
#pragma once

#include "cir/function.hpp"

namespace clara::nf {

/// Longest-prefix match on destination IPs. `rules` sets the
/// match-action table size (the Figure 3(a) sweep variable);
/// `use_flow_cache` is the hand-tuning knob Figure 1 varies.
struct LpmConfig {
  std::uint64_t rules = 10'000;
  bool use_flow_cache = true;
};
cir::Function build_lpm_nf(const LpmConfig& config = {});

/// Network address translation: per-flow table, header translation and
/// checksum update per packet (Figure 3(c)).
struct NatConfig {
  std::uint64_t flow_entries = 131'072;  // x 64 B = 8 MiB, EMEM-resident
};
cir::Function build_nat_nf(const NatConfig& config = {});

/// Stateful firewall: established-connection fast path; TCP SYNs consult
/// the rule table and install state; everything else drops.
struct FwConfig {
  std::uint64_t conn_entries = 16'384;
  Bytes conn_entry_bytes = 64;
  std::uint64_t rules = 1024;
};
cir::Function build_fw_nf(const FwConfig& config = {});

/// Deep packet inspection: an explicit per-byte scan loop over the
/// payload (collapsed to vcall_payload_scan by pattern matching).
cir::Function build_dpi_nf();

/// Heavy-hitter detection: per-flow counters with a threshold check.
struct HhConfig {
  std::uint64_t counters = 16'384;
};
cir::Function build_hh_nf(const HhConfig& config = {});

/// Token-bucket metering.
struct MeterConfig {
  std::uint64_t buckets = 4096;
};
cir::Function build_meter_nf(const MeterConfig& config = {});

/// Per-flow byte/packet statistics.
struct FlowStatsConfig {
  std::uint64_t entries = 16'384;
};
cir::Function build_flowstats_nf(const FlowStatsConfig& config = {});

/// Header rewrite: parse + a handful of metadata modifications (the
/// minimal NF; useful for calibration and tests).
cir::Function build_rewrite_nf();

/// The paper's VNF chain: DPI, metering, header modifications, flow
/// statistics (Figure 3(b)).
struct VnfConfig {
  std::uint64_t meter_buckets = 4096;
  std::uint64_t stats_entries = 16'384;
};
cir::Function build_vnf_chain(const VnfConfig& config = {});

/// IPsec-style encryption gateway: SA lookup, payload encryption on the
/// crypto engine, header rewrite. Exercises the crypto accelerator path.
struct CryptoGwConfig {
  std::uint64_t sa_entries = 4096;
};
cir::Function build_crypto_gw_nf(const CryptoGwConfig& config = {});

/// An NF with a checksum computed as an explicit accumulation loop —
/// exercises the csum idiom matcher (tests/ablation only).
cir::Function build_csum_loop_nf();

/// An NF that uses floating-point arithmetic (EWMA-based rate
/// estimation) — exercises the FPU-emulation cost path of §3.4.
cir::Function build_rate_estimator_nf();

}  // namespace clara::nf
