#include "nf/compose.hpp"

#include "cir/builder.hpp"
#include "cir/vcalls.hpp"
#include "cir/verify.hpp"
#include "common/strings.hpp"

namespace clara::nf {

using cir::Instr;
using cir::kNoReg;
using cir::Opcode;
using cir::Value;

namespace {

/// Rebases a stage's blocks/registers/states by fixed offsets.
void rebase(cir::Function& stage, std::uint32_t block_offset, std::uint32_t reg_offset,
            std::uint32_t state_offset, const std::string& prefix) {
  for (auto& block : stage.blocks) {
    block.label = prefix + "." + block.label;
    for (auto& instr : block.instrs) {
      if (instr.dst != kNoReg) instr.dst += reg_offset;
      for (auto& arg : instr.args) {
        if (arg.is_reg()) arg.reg += reg_offset;
      }
      if (instr.op == Opcode::kBr || instr.op == Opcode::kCondBr) {
        instr.target0 += block_offset;
        if (instr.op == Opcode::kCondBr) instr.target1 += block_offset;
      }
      for (auto& pred : instr.phi_preds) pred += block_offset;
      if (instr.space == cir::MemSpace::kState) instr.state += state_offset;
      // State-taking vcalls carry the state index as the first immediate.
      if (instr.op == Opcode::kCall) {
        if (const auto v = cir::parse_vcall(instr.callee); v && cir::vcall_takes_state(*v)) {
          instr.args[0] = Value::of_imm(instr.args[0].imm + static_cast<std::int64_t>(state_offset));
        }
      }
    }
  }
}

/// Rewrites every `vcall_emit; ret` exit of blocks [begin, end) into a
/// branch to `next_entry`. Returns the number of rewritten exits.
std::size_t redirect_emits(cir::Function& fn, std::size_t begin, std::size_t end, std::uint32_t next_entry) {
  std::size_t redirected = 0;
  for (std::size_t b = begin; b < end; ++b) {
    auto& instrs = fn.blocks[b].instrs;
    if (instrs.size() < 2) continue;
    Instr& last = instrs.back();
    Instr& prev = instrs[instrs.size() - 2];
    if (last.op != Opcode::kRet) continue;
    if (prev.op != Opcode::kCall || prev.callee != cir::vcall_name(cir::VCall::kEmit)) continue;
    // Drop the emit, turn the ret into a branch.
    instrs.erase(instrs.end() - 2);
    Instr& term = instrs.back();
    term.op = Opcode::kBr;
    term.target0 = next_entry;
    ++redirected;
  }
  return redirected;
}

}  // namespace

Result<cir::Function> compose_chain(const std::string& name, const std::vector<cir::Function>& stages) {
  if (stages.empty()) return make_error("compose_chain: no stages");
  for (const auto& stage : stages) {
    if (auto status = cir::verify(stage); !status) {
      return make_error(strf("compose_chain: stage '%s' invalid: %s", stage.name.c_str(),
                             status.error().message.c_str()));
    }
  }

  cir::Function out;
  out.name = name;

  std::vector<std::size_t> stage_begin;  // first block index of each stage
  for (const auto& original : stages) {
    cir::Function stage = original;  // copy, then rebase in place
    const auto block_offset = static_cast<std::uint32_t>(out.blocks.size());
    const auto state_offset = static_cast<std::uint32_t>(out.state_objects.size());
    rebase(stage, block_offset, out.num_regs, state_offset, stage.name);
    stage_begin.push_back(out.blocks.size());
    for (auto& block : stage.blocks) out.blocks.push_back(std::move(block));
    for (auto& state : stage.state_objects) {
      // Keep state names unique across stages.
      state.name = stage.name + "." + state.name;
      out.state_objects.push_back(std::move(state));
    }
    out.num_regs += stage.num_regs;
  }
  stage_begin.push_back(out.blocks.size());

  // Wire each stage's emits into the next stage's entry.
  for (std::size_t k = 0; k + 1 < stages.size(); ++k) {
    const auto next_entry = static_cast<std::uint32_t>(stage_begin[k + 1]);
    const std::size_t redirected =
        redirect_emits(out, stage_begin[k], stage_begin[k + 1], next_entry);
    if (redirected == 0) {
      return make_error(strf("compose_chain: stage '%s' never emits; nothing reaches '%s'",
                             stages[k].name.c_str(), stages[k + 1].name.c_str()));
    }
  }

  if (auto status = cir::verify(out); !status) {
    return make_error("compose_chain: composed function invalid: " + status.error().message);
  }
  return out;
}

}  // namespace clara::nf
