#include "core/sweep.hpp"

#include <chrono>
#include <thread>

#include "cir/hash.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "core/cache.hpp"
#include "core/predict.hpp"
#include "obs/metrics.hpp"
#include "obs/pool.hpp"
#include "obs/trace.hpp"
#include "passes/dataflow.hpp"
#include "workload/tracegen.hpp"

namespace clara::core {

std::vector<SweepPoint> make_grid(const std::vector<double>& loads_pps,
                                  const std::vector<std::vector<double>>& params,
                                  std::uint64_t base_seed) {
  const std::vector<double> loads = loads_pps.empty() ? std::vector<double>{0.0} : loads_pps;
  const std::vector<std::vector<double>> vecs =
      params.empty() ? std::vector<std::vector<double>>{{}} : params;
  std::vector<SweepPoint> grid;
  grid.reserve(loads.size() * vecs.size());
  for (const double pps : loads) {
    for (const auto& vec : vecs) {
      SweepPoint p;
      p.index = grid.size();
      p.seed = parallel::shard_seed(base_seed, p.index);
      p.load_pps = pps;
      p.params = vec;
      grid.push_back(std::move(p));
    }
  }
  return grid;
}

void SweepFailureSummary::merge(const SweepFailureSummary& other) {
  shards += other.shards;
  retried += other.retried;
  recovered += other.recovered;
  failed += other.failed;
  for (const auto& e : other.errors) {
    if (errors.size() >= kMaxErrors) break;
    errors.push_back(e);
  }
}

std::string SweepFailureSummary::describe() const {
  return strf("sweep shards: %llu total, %llu retried, %llu recovered, %llu failed",
              static_cast<unsigned long long>(shards), static_cast<unsigned long long>(retried),
              static_cast<unsigned long long>(recovered), static_cast<unsigned long long>(failed));
}

std::vector<SweepResult> run_sweep(const std::vector<SweepPoint>& points, const SweepEval& eval,
                                   const SweepOptions& options, SweepFailureSummary* failures) {
  CLARA_TRACE_SCOPE("core/sweep");
  const auto pool_before = parallel::pool().stats();
  std::vector<SweepResult> results(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    results[i].point = points[i];
    results[i].histogram = Histogram(options.hist_lo, options.hist_hi, options.hist_buckets);
  }
  // Shards are disjoint slots of `results`, so the body is race-free by
  // construction; each shard's RNG stream comes from its point.seed.
  // A failed shard is retried exactly once on a fresh result slot after
  // a brief backoff (transient faults — injected or real — may clear);
  // whether a shard retries depends only on its own eval outcome, never
  // on scheduling, so the output is identical at every jobs level.
  parallel::parallel_for_jobs(options.jobs, 0, points.size(), [&](std::size_t i) {
    eval(points[i], results[i]);
    if (results[i].ok) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    SweepResult retry;
    retry.point = points[i];
    retry.histogram = Histogram(options.hist_lo, options.hist_hi, options.hist_buckets);
    retry.attempts = 2;
    eval(points[i], retry);
    results[i] = std::move(retry);
  });
  obs::publish_pool_stats("sweep", pool_before, parallel::pool().stats());

  // Assemble the failure summary serially, in point-index order, so the
  // recorded error lines are deterministic regardless of scheduling.
  SweepFailureSummary summary;
  summary.shards = points.size();
  for (const auto& r : results) {
    if (r.attempts > 1) {
      ++summary.retried;
      if (r.ok) ++summary.recovered;
    }
    if (!r.ok) {
      ++summary.failed;
      if (summary.errors.size() < SweepFailureSummary::kMaxErrors) {
        summary.errors.push_back(strf("shard %zu: %s", r.point.index, r.error.c_str()));
      }
    }
  }

  auto& registry = obs::metrics();
  registry.counter("sweep/runs").inc();
  registry.counter("sweep/points").inc(points.size());
  if (summary.retried > 0) registry.counter("sweep/shard_retries").inc(summary.retried);
  if (summary.failed > 0) registry.counter("sweep/shard_failures").inc(summary.failed);
  if (failures != nullptr) failures->merge(summary);
  return results;
}

Histogram merge_histograms(const std::vector<SweepResult>& results, const SweepOptions& options) {
  Histogram merged(options.hist_lo, options.hist_hi, options.hist_buckets);
  for (const auto& r : results) {
    if (r.ok) merged.merge(r.histogram);
  }
  return merged;
}

Accumulator merge_stats(const std::vector<SweepResult>& results) {
  Accumulator merged;
  for (const auto& r : results) {
    if (r.ok) merged.merge(r.stats);
  }
  return merged;
}

std::vector<LoadSweepPoint> predict_load_sweep(const Analyzer& analyzer, const Analysis& analysis,
                                               const workload::WorkloadProfile& profile,
                                               const std::vector<double>& loads_pps,
                                               const AnalyzeOptions& options, std::size_t jobs,
                                               SweepFailureSummary* failures) {
  // The graph the mapping was priced against: rebuilt from the lowered
  // function with hints taken at the base profile (mirrors analyze()).
  // The graph cache is keyed on the lowered function's content, so when
  // analyze() just ran this lookup is warm and the rebuild is skipped.
  const auto base_trace = workload::generate_trace(profile);
  const auto hints = hints_from_trace(base_trace, analyzer.profile());
  auto& cache = analysis_cache();
  const bool use_cache = options.use_cache && cache.enabled();
  std::uint64_t gkey = 0;
  std::uint64_t fn_hash = 0;
  std::shared_ptr<const GraphEntry> graph_entry;
  if (use_cache) {
    fn_hash = cir::hash_function(analysis.lowered);
    gkey = graph_key(fn_hash, hash_hints(hints), analyzer.profile_hash());
    graph_entry = cache.find_graph(gkey);
  }
  if (!graph_entry) {
    auto entry = std::make_shared<GraphEntry>();
    auto lowered = std::make_shared<LoweredEntry>();
    lowered->fn = analysis.lowered;
    lowered->lowered_hash = fn_hash;
    entry->lowered = std::move(lowered);
    entry->graph = passes::DataflowGraph::build(entry->lowered->fn, hints);
    if (use_cache) cache.insert_graph(gkey, entry);
    graph_entry = std::move(entry);
  }
  const passes::DataflowGraph& graph = graph_entry->graph;
  const mapping::Mapper mapper(analyzer.profile());

  std::vector<LoadSweepPoint> out(loads_pps.size());
  SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  const auto grid = make_grid(loads_pps, {}, profile.seed);
  run_sweep(grid,
            [&](const SweepPoint& point, SweepResult& result) {
              auto& slot = out[point.index];
              slot = LoadSweepPoint{};  // retries rewrite the slot from scratch
              slot.pps = point.load_pps;
              slot.seed = point.seed;
              workload::WorkloadProfile shard = profile;
              shard.pps = point.load_pps;
              shard.seed = point.seed;
              const auto trace = workload::generate_trace(shard);
              auto prediction =
                  predict(analysis.lowered, graph, analysis.mapping, mapper, trace, options.predict);
              if (!prediction) {
                result.ok = false;
                result.error = slot.error = prediction.error().message;
                return;
              }
              slot.prediction = std::move(prediction).value();
              slot.ok = true;
              result.value = slot.prediction.mean_latency_us;
              result.stats.add(slot.prediction.mean_latency_us);
            },
            sweep_options, failures);
  return out;
}

}  // namespace clara::core
