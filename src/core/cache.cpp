#include "core/cache.hpp"

#include "common/hash.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace clara::core {

namespace {

// Coarse footprint estimates for the cache/bytes gauge. Accounting only
// — eviction is entry-count-based, so a rough model is fine.
std::uint64_t approx_bytes(const LoweredEntry& entry) {
  std::uint64_t n = 256;
  for (const auto& block : entry.fn.blocks) {
    n += 64 + block.instrs.size() * sizeof(cir::Instr);
  }
  n += entry.fn.state_objects.size() * sizeof(cir::StateObject);
  return n;
}

std::uint64_t approx_bytes(const GraphEntry& entry) {
  return 128 + entry.graph.nodes().size() * sizeof(passes::DfNode) +
         entry.graph.edges().size() * sizeof(passes::DfEdge);
}

std::uint64_t approx_bytes(const MappingEntry& entry) {
  return 128 + entry.mapping.node_pool.size() * sizeof(std::uint32_t) +
         entry.mapping.state_region.size() * sizeof(NodeId) +
         entry.mapping.ilp_incumbents.size() * sizeof(ilp::IncumbentStep) +
         entry.mapping.ilp_basis.size() * sizeof(std::size_t);
}

void count_lookup(std::atomic<std::uint64_t>& counter, bool hit, const char* stage,
                  std::uint64_t stage_ordinal, std::uint64_t key) {
  counter.fetch_add(1, std::memory_order_relaxed);
  obs::metrics().counter(hit ? "cache/hits" : "cache/misses", std::string("stage=") + stage).inc();
  obs::record(hit ? obs::FlightEventKind::kCacheHit : obs::FlightEventKind::kCacheMiss,
              stage_ordinal, key);
}

// Poisoned-entry simulation ("cache/poison" site, keyed by the entry's
// content digest): the digest re-check that a hit performs is forced to
// mismatch, so the entry is treated as corrupt — dropped and recomputed.
// Keying on the digest (not lookup order) keeps detection bit-identical
// at every jobs level, and the recompute produces an identical value, so
// analysis results are unchanged; only hit accounting and work differ.
template <typename EntryPtr>
bool poisoned(const EntryPtr& entry, std::uint64_t key, const char* stage) {
  if (!entry || !fault::inject("cache/poison", key)) return false;
  obs::metrics().counter("fault/cache_poison_detected", std::string("stage=") + stage).inc();
  return true;
}

// Injected eviction storm ("cache/evict_storm" site, keyed by the insert
// digest): the whole stage cache is flushed, as if a burst of competing
// insertions cycled every shard. Purely a performance fault — entries
// are recomputed on demand with identical content.
template <typename T>
std::uint64_t storm(ShardedLru<T>& cache, const char* stage) {
  const std::uint64_t dropped = cache.size();
  cache.clear();
  obs::metrics().counter("fault/cache_evict_storms", std::string("stage=") + stage).inc();
  return dropped;
}

}  // namespace

void AnalysisCache::configure(const CacheConfig& config) {
  enabled_.store(config.enabled, std::memory_order_relaxed);
  lowered_.set_capacity(config.max_entries);
  graphs_.set_capacity(config.max_entries);
  mappings_.set_capacity(config.max_entries);
}

std::shared_ptr<const LoweredEntry> AnalysisCache::find_lowered(std::uint64_t key) {
  if (!enabled()) return nullptr;
  auto entry = lowered_.find(key);
  if (poisoned(entry, key, "lowered")) entry = nullptr;
  count_lookup(entry ? hits_ : misses_, entry != nullptr, "lowered", 0, key);
  return entry;
}

std::shared_ptr<const GraphEntry> AnalysisCache::find_graph(std::uint64_t key) {
  if (!enabled()) return nullptr;
  auto entry = graphs_.find(key);
  if (poisoned(entry, key, "graph")) entry = nullptr;
  count_lookup(entry ? hits_ : misses_, entry != nullptr, "graph", 1, key);
  return entry;
}

std::shared_ptr<const MappingEntry> AnalysisCache::find_mapping(std::uint64_t key) {
  if (!enabled()) return nullptr;
  auto entry = mappings_.find(key);
  if (poisoned(entry, key, "map")) entry = nullptr;
  count_lookup(entry ? hits_ : misses_, entry != nullptr, "map", 2, key);
  return entry;
}

void AnalysisCache::insert_lowered(std::uint64_t key, std::shared_ptr<const LoweredEntry> entry) {
  if (!enabled()) return;
  const std::uint64_t bytes = approx_bytes(*entry);
  std::uint64_t evicted = 0;
  std::uint64_t added = 0;
  lowered_.insert(key, std::move(entry), bytes, &evicted, &added);
  if (fault::inject("cache/evict_storm", key)) evicted += storm(lowered_, "lowered");
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    obs::metrics().counter("cache/evictions", "stage=lowered").inc(evicted);
  }
  obs::metrics().gauge("cache/bytes").set(static_cast<double>(stats().bytes));
}

void AnalysisCache::insert_graph(std::uint64_t key, std::shared_ptr<const GraphEntry> entry) {
  if (!enabled()) return;
  const std::uint64_t bytes = approx_bytes(*entry);
  std::uint64_t evicted = 0;
  std::uint64_t added = 0;
  graphs_.insert(key, std::move(entry), bytes, &evicted, &added);
  if (fault::inject("cache/evict_storm", key)) evicted += storm(graphs_, "graph");
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    obs::metrics().counter("cache/evictions", "stage=graph").inc(evicted);
  }
  obs::metrics().gauge("cache/bytes").set(static_cast<double>(stats().bytes));
}

void AnalysisCache::insert_mapping(std::uint64_t key, std::uint64_t family_key,
                                   std::shared_ptr<const MappingEntry> entry) {
  if (!enabled()) return;
  if (!entry->mapping.ilp_basis.empty()) {
    std::lock_guard<std::mutex> lock(family_mu_);
    family_bases_[family_key] = entry->mapping.ilp_basis;
  }
  const std::uint64_t bytes = approx_bytes(*entry);
  std::uint64_t evicted = 0;
  std::uint64_t added = 0;
  mappings_.insert(key, std::move(entry), bytes, &evicted, &added);
  if (fault::inject("cache/evict_storm", key)) evicted += storm(mappings_, "map");
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    obs::metrics().counter("cache/evictions", "stage=map").inc(evicted);
  }
  obs::metrics().gauge("cache/bytes").set(static_cast<double>(stats().bytes));
}

std::vector<std::size_t> AnalysisCache::family_basis(std::uint64_t family_key) const {
  std::lock_guard<std::mutex> lock(family_mu_);
  const auto it = family_bases_.find(family_key);
  return it != family_bases_.end() ? it->second : std::vector<std::size_t>{};
}

CacheStats AnalysisCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.bytes = lowered_.bytes() + graphs_.bytes() + mappings_.bytes();
  return out;
}

void AnalysisCache::clear() {
  lowered_.clear();
  graphs_.clear();
  mappings_.clear();
  {
    std::lock_guard<std::mutex> lock(family_mu_);
    family_bases_.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  obs::metrics().gauge("cache/bytes").set(0.0);
}

AnalysisCache& analysis_cache() {
  static AnalysisCache cache;
  return cache;
}

std::uint64_t hash_profile(const lnic::NicProfile& profile) {
  Fnv1a h;
  h.mix(std::string_view(profile.name));
  // The parameter store's canonical text form covers every Π/Γ/Θ scalar
  // and curve; the graph loop covers structural edits (units, regions,
  // capacities, NUMA weights).
  h.mix(std::string_view(profile.params.serialize()));
  h.mix(static_cast<std::uint64_t>(profile.graph.nodes().size()));
  for (const auto& node : profile.graph.nodes()) {
    h.mix(static_cast<std::uint64_t>(node.id));
    h.mix(std::string_view(node.name));
    h.mix_byte(static_cast<std::uint8_t>(node.type()));
    if (const auto* cu = node.compute()) {
      h.mix_byte(static_cast<std::uint8_t>(cu->kind));
      h.mix(cu->island);
      h.mix(cu->threads);
      h.mix(cu->pipeline_stage);
      h.mix(cu->match_action);
      h.mix(cu->offline);
      h.mix(cu->derate);
    } else if (const auto* mem = node.memory()) {
      h.mix_byte(static_cast<std::uint8_t>(mem->kind));
      h.mix(static_cast<std::uint64_t>(mem->capacity));
      h.mix(mem->island);
      h.mix(static_cast<std::uint64_t>(mem->cache_capacity));
      h.mix(mem->offline);
    } else if (const auto* hub = node.hub()) {
      h.mix(static_cast<std::uint64_t>(hub->queue_capacity));
      h.mix_byte(static_cast<std::uint8_t>(hub->discipline));
    }
  }
  h.mix(static_cast<std::uint64_t>(profile.graph.edges().size()));
  for (const auto& edge : profile.graph.edges()) {
    h.mix(static_cast<std::uint64_t>(edge.from));
    h.mix(static_cast<std::uint64_t>(edge.to));
    h.mix_byte(static_cast<std::uint8_t>(edge.kind));
    h.mix(edge.weight);
  }
  return h.digest();
}

std::uint64_t hash_hints(const passes::CostHints& hints) {
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(hints.params.size()));
  for (const auto& [name, value] : hints.params) {  // std::map: deterministic order
    h.mix(std::string_view(name));
    h.mix(value);
  }
  h.mix(hints.avg_payload);
  h.mix(hints.flow_cache_hit_rate);
  h.mix(hints.branch_prob);
  return h.digest();
}

std::uint64_t lowered_key(std::uint64_t input_fn_hash, bool pattern_matching, bool optimize_ir) {
  return Fnv1a().mix(std::string_view("lowered")).mix(input_fn_hash).mix(pattern_matching).mix(optimize_ir).digest();
}

std::uint64_t graph_key(std::uint64_t lowered_fn_hash, std::uint64_t hints_hash,
                        std::uint64_t profile_hash) {
  return Fnv1a().mix(std::string_view("graph")).mix(lowered_fn_hash).mix(hints_hash).mix(profile_hash).digest();
}

std::uint64_t mapping_key(std::uint64_t graph_digest, const mapping::MapOptions& options,
                          bool use_ilp, std::uint64_t* family_out) {
  Fnv1a h;
  h.mix(std::string_view("map"));
  h.mix(graph_digest);
  h.mix(options.pps);
  h.mix(options.ctm_state_fraction);
  h.mix(static_cast<std::uint64_t>(options.max_ilp_nodes));
  h.mix(use_ilp);
  // Everything but the time budget forms the warm-basis family: the
  // model is identical, only how long we are willing to solve differs.
  if (family_out != nullptr) *family_out = h.digest();
  h.mix(options.time_budget_ms);
  return h.digest();
}

}  // namespace clara::core
