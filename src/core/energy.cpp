#include "core/energy.hpp"

#include <cmath>

#include "passes/costmodel.hpp"

namespace clara::core {

namespace ek = energy_keys;

void ensure_energy_defaults(lnic::ParameterStore& params, const std::string& profile_name) {
  auto set_if_absent = [&](const char* key, double v) {
    if (!params.has(key)) params.set_scalar(key, v);
  };
  if (profile_name == "soc-arm") {
    // Big OoO cores: more energy per cycle, but cycles are shorter.
    set_if_absent(ek::kNpuPerCycle, 0.9);
    set_if_absent(ek::kAccelPerCycle, 0.3);
    set_if_absent(ek::kIdleWatts, 20.0);
  } else if (profile_name == "pipeline-asic") {
    set_if_absent(ek::kNpuPerCycle, 0.25);
    set_if_absent(ek::kAccelPerCycle, 0.05);
    set_if_absent(ek::kIdleWatts, 30.0);
  } else {
    // Netronome-class NPUs: small in-order cores.
    set_if_absent(ek::kNpuPerCycle, 0.15);
    set_if_absent(ek::kAccelPerCycle, 0.30);
    set_if_absent(ek::kIdleWatts, 15.0);
  }
  set_if_absent(ek::kMemPerAccessCtm, 0.8);
  set_if_absent(ek::kMemPerAccessImem, 2.0);
  set_if_absent(ek::kMemPerAccessEmem, 12.0);  // DRAM row activation
  set_if_absent(ek::kDmaPerByte, 0.05);
}

EnergyEstimate predict_energy(const cir::Function& fn, const passes::DataflowGraph& graph,
                              const mapping::Mapping& mapping, const mapping::Mapper& mapper,
                              const workload::Trace& trace) {
  lnic::ParameterStore params = mapper.profile().params;  // copy: we may add defaults
  ensure_energy_defaults(params, mapper.profile().name);
  const passes::CostHints hints = hints_from_trace(trace, mapper.profile());

  const double npu_nj = params.scalar(ek::kNpuPerCycle);
  const double accel_nj = params.scalar(ek::kAccelPerCycle);

  auto mem_nj = [&](NodeId region) {
    switch (mapper.profile().graph.node(region).memory()->kind) {
      case lnic::MemKind::kLocal: return 0.1;
      case lnic::MemKind::kCtm: return params.scalar(ek::kMemPerAccessCtm);
      case lnic::MemKind::kImem: return params.scalar(ek::kMemPerAccessImem);
      case lnic::MemKind::kEmem: return params.scalar(ek::kMemPerAccessEmem);
    }
    return 1.0;
  };

  EnergyEstimate out;
  for (const auto& node : graph.nodes()) {
    const auto& pool = mapper.pools()[mapping.node_pool[node.id]];
    const double cycles = mapper.node_cost_on_pool(node, pool, fn, hints);
    const double per_cycle = pool.kind == lnic::UnitKind::kNpuCore ? npu_nj : accel_nj;
    out.nj_per_packet += node.weight * cycles * per_cycle;
    for (std::size_t s = 0; s < fn.state_objects.size(); ++s) {
      const double accesses =
          mapping::Mapper::node_state_accesses(node, pool.kind, static_cast<std::uint32_t>(s), fn);
      if (accesses > 0.0) {
        out.nj_per_packet += node.weight * accesses * mem_nj(mapping.state_region[s]);
      }
    }
  }
  // Datapath: moving the frame on and off the device.
  const double frame = trace.mean_payload() + 54.0;
  out.nj_per_packet += 2.0 * frame * params.scalar(ek::kDmaPerByte);

  const double pps = trace.profile.pps;
  const double idle = params.scalar(ek::kIdleWatts);
  out.watts_at_rate = idle + out.nj_per_packet * 1e-9 * pps;
  out.nj_per_packet_total = pps > 0.0 ? out.watts_at_rate / pps * 1e9 : out.nj_per_packet;
  return out;
}

}  // namespace clara::core
