#include "core/partial.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"
#include "passes/costmodel.hpp"

namespace clara::core {

namespace {

/// Host-side cycles for one execution of a dataflow node.
double host_node_cycles(const passes::DfNode& node, const cir::Function& fn, const HostModel& host,
                        double avg_payload) {
  const auto& mix = node.mix;
  double cycles = static_cast<double>(mix.alu + mix.cmp + mix.select + mix.branch + mix.phi + mix.fp +
                                      mix.header_ops + mix.scratch_ops) *
                  host.cycles_per_instr;
  cycles += static_cast<double>(mix.mul) * 3.0 * host.cycles_per_instr;
  cycles += static_cast<double>(mix.div) * 20.0 * host.cycles_per_instr;
  cycles += static_cast<double>(mix.packet_loads + mix.packet_stores) * host.packet_access_cycles;
  for (const auto& [s, n] : mix.state_reads) cycles += static_cast<double>(n) * host.state_access_cycles;
  for (const auto& [s, n] : mix.state_writes) cycles += static_cast<double>(n) * host.state_access_cycles;

  for (const auto& site : node.vcalls) {
    const double arg = site.arg_hint > 0.0 ? site.arg_hint : avg_payload;
    switch (site.v) {
      case cir::VCall::kParse: cycles += host.parse_cycles; break;
      case cir::VCall::kGetHdr: case cir::VCall::kSetHdr: cycles += host.cycles_per_instr; break;
      case cir::VCall::kCsum: cycles += host.csum_base + host.csum_per_byte * arg; break;
      case cir::VCall::kCrypto: cycles += host.crypto_per_byte * arg; break;
      case cir::VCall::kLpmLookup: cycles += host.lpm_cycles; break;
      case cir::VCall::kTableLookup: cycles += host.table_lookup_cycles; break;
      case cir::VCall::kTableUpdate: cycles += host.table_update_cycles; break;
      case cir::VCall::kPayloadScan: cycles += host.scan_per_byte * arg; break;
      case cir::VCall::kMeter: cycles += host.meter_cycles; break;
      case cir::VCall::kStatsUpdate: cycles += host.stats_cycles; break;
      case cir::VCall::kEmit: case cir::VCall::kDrop: cycles += 30.0; break;
    }
    // Host-side placement-dependent state accesses (hash probes etc.).
    if (site.state != ~0u) {
      const auto* state = &fn.state_objects[site.state];
      cycles += passes::vcall_state_accesses(site.v, lnic::UnitKind::kNpuCore, state) * host.state_access_cycles;
    }
  }
  return cycles;
}

}  // namespace

Result<PartialResult> plan_partial_offload(const cir::Function& fn, const passes::DataflowGraph& graph,
                                           const mapping::Mapping& mapping, const mapping::Mapper& mapper,
                                           const workload::Trace& trace, const HostModel& host) {
  const auto& nodes = graph.nodes();
  if (nodes.empty()) return make_error("partial offload: empty dataflow graph");
  const std::size_t n = nodes.size();

  const passes::CostHints hints = hints_from_trace(trace, mapper.profile());
  const double nic_clock = mapper.profile().params.scalar(lnic::keys::kClockHz);
  const double frame = trace.mean_payload() + 54.0;

  // Valid cuts: no dataflow edge may run from the host side back to the
  // NIC side (node ids are assigned in reverse post-order, so prefix
  // cuts respect forward edges; backward edges are loops).
  auto cut_valid = [&](std::size_t cut) {
    for (const auto& edge : graph.edges()) {
      if (edge.from >= cut && edge.to < cut) return false;
    }
    return true;
  };

  // Per-node one-side costs.
  std::vector<double> nic_cost(n, 0.0), host_cost(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& pool = mapper.pools()[mapping.node_pool[i]];
    double cycles = mapper.node_cost_on_pool(nodes[i], pool, fn, hints);
    for (std::size_t s = 0; s < fn.state_objects.size(); ++s) {
      const double accesses =
          mapping::Mapper::node_state_accesses(nodes[i], pool.kind, static_cast<std::uint32_t>(s), fn);
      if (accesses > 0.0) cycles += accesses * mapper.access_cycles(pool, mapping.state_region[s]);
    }
    nic_cost[i] = nodes[i].weight * cycles;
    host_cost[i] = nodes[i].weight * host_node_cycles(nodes[i], fn, host, hints.avg_payload);
  }

  // State-access counts per side per cut are needed for the coherence
  // penalty; precompute per-node per-state access totals (kind-agnostic
  // approximation: NPU-side counts).
  std::vector<std::vector<double>> state_accesses(n, std::vector<double>(fn.state_objects.size(), 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < fn.state_objects.size(); ++s) {
      state_accesses[i][s] = nodes[i].weight * mapping::Mapper::node_state_accesses(
                                                   nodes[i], lnic::UnitKind::kNpuCore,
                                                   static_cast<std::uint32_t>(s), fn);
    }
  }

  PartialResult result;
  for (std::size_t cut = 0; cut <= n; ++cut) {
    if (!cut_valid(cut)) continue;
    PartialPlan plan;
    plan.cut = cut;
    double nic_cycles = 0.0, host_cycles = 0.0;
    for (std::size_t i = 0; i < cut; ++i) nic_cycles += nic_cost[i];
    for (std::size_t i = cut; i < n; ++i) host_cycles += host_cost[i];

    // Datapath constants: the NIC always receives the packet; a pure
    // host plan just forwards it.
    nic_cycles += mapper.profile().params.scalar(lnic::keys::kIngressDmaBase) +
                  mapper.profile().params.scalar(lnic::keys::kIngressDmaPerByte) * frame;

    if (cut < n) {
      // Packets cross to the host only if the NIC-side prefix did not
      // already dispose of them (drop/emit): the crossing fraction is
      // the expected executions of the first host node.
      plan.crossing_fraction = std::min(1.0, nodes[cut].weight);
      plan.pcie_us = plan.crossing_fraction * (host.pcie_rtt_us + host.pcie_us_per_byte * frame);
    } else {
      plan.crossing_fraction = 0.0;
    }

    // Cross-side state: each state object lives with the side that
    // touches it more; the minority side pays a PCIe round trip per
    // access (no coherence over PCIe).
    for (std::size_t s = 0; s < fn.state_objects.size(); ++s) {
      double nic_touches = 0.0, host_touches = 0.0;
      for (std::size_t i = 0; i < cut; ++i) nic_touches += state_accesses[i][s];
      for (std::size_t i = cut; i < n; ++i) host_touches += state_accesses[i][s];
      plan.pcie_us += std::min(nic_touches, host_touches) * host.pcie_rtt_us;
    }

    plan.nic_us = nic_cycles / nic_clock * 1e6;
    plan.host_us = host_cycles / host.clock_hz * 1e6;
    plan.weighted_cost = plan.nic_us + plan.pcie_us + host.host_core_weight * plan.host_us;
    plan.boundary = cut == 0 ? "(all host)" : cut == n ? "(full offload)" : nodes[cut].label;
    result.plans.push_back(plan);
  }

  result.best = 0;
  for (std::size_t i = 1; i < result.plans.size(); ++i) {
    if (result.plans[i].weighted_cost < result.plans[result.best].weighted_cost) result.best = i;
  }
  return result;
}

std::string describe_partial(const PartialResult& result, const passes::DataflowGraph& graph) {
  (void)graph;
  std::string out = strf("%-28s %9s %9s %9s %9s %9s\n", "cut (first host node)", "nic us", "host us",
                         "pcie us", "cross", "total us");
  for (std::size_t i = 0; i < result.plans.size(); ++i) {
    const auto& plan = result.plans[i];
    out += strf("%-28s %9.2f %9.2f %9.2f %8.0f%% %9.2f%s\n", plan.boundary.c_str(), plan.nic_us, plan.host_us,
                plan.pcie_us, plan.crossing_fraction * 100.0, plan.total_us(),
                i == result.best ? "  <== best" : "");
  }
  return out;
}

}  // namespace clara::core
