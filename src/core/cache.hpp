// Content-addressed memoization of pipeline stages.
//
// Clara's workflow (paper Fig. 2) is fully deterministic in the tuple
// (NF, LNIC parameters Π/Γ/Θ, options): sweep points and repeated
// analyze() calls re-derive byte-identical lowered functions, dataflow
// graphs, and ILP mappings. This cache keys each stage by an FNV digest
// of everything the stage reads and replays the stored result instead
// of re-running the stage — on a warm pass every ILP solve is skipped.
//
// Three stage caches, chained by content:
//   lowered  key = H(input fn) ⊕ stage toggles
//   graph    key = H(lowered fn) ⊕ H(cost hints) ⊕ H(profile)
//   mapping  key = graph key ⊕ H(MapOptions) ⊕ ilp/greedy
// Keying the graph on the *lowered* function's hash (not the input's)
// lets consumers that already hold a lowered function — the load-sweep
// driver, the co-residence study — address the same entries.
//
// Entries are immutable once inserted (handed out as shared_ptr<const>);
// each stage cache is a sharded LRU with a per-shard mutex. Lookups that
// race a concurrent compute of the same key simply compute twice — the
// results are identical by construction, so last-insert-wins is safe.
//
// Separately, the mapping cache remembers the most recent simplex basis
// per model *family* (mapping key minus the time budget). A re-solve of
// the same model under a different budget — the "raise the deadline and
// try again" loop — warm-starts from that basis instead of factoring
// from scratch.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cir/function.hpp"
#include "lnic/profiles.hpp"
#include "mapping/mapping.hpp"
#include "passes/api_subst.hpp"
#include "passes/costmodel.hpp"
#include "passes/dataflow.hpp"
#include "passes/optimize.hpp"
#include "passes/patterns.hpp"

namespace clara::core {

struct CacheConfig {
  bool enabled = true;
  /// Capacity per stage cache, in entries (split across shards).
  std::size_t max_entries = 256;
};

/// Aggregate accounting across all three stage caches. Mirrored into
/// obs metrics as cache/{hits,misses,evictions,bytes} with a stage label.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;
};

/// Result of the lowering front-end (substitution, pattern collapse,
/// optimization, verification) for one (function, toggles) key.
struct LoweredEntry {
  cir::Function fn;
  passes::SubstitutionReport substitution;
  passes::PatternReport patterns;
  passes::OptimizeReport optimizations;
  /// cir::hash_function(fn) of the lowered function — the link to the
  /// graph cache.
  std::uint64_t lowered_hash = 0;
};

/// A dataflow graph plus the function it was built against.
/// DataflowGraph holds a raw pointer to its function, so the entry
/// keeps the owning LoweredEntry alive; `graph.function()` points into
/// `lowered->fn` for the lifetime of the entry.
struct GraphEntry {
  std::shared_ptr<const LoweredEntry> lowered;
  passes::DataflowGraph graph;
};

struct MappingEntry {
  mapping::Mapping mapping;
};

/// Sharded LRU keyed by a 64-bit content digest. Values are shared
/// immutable snapshots; eviction drops the cache's reference only.
template <typename T>
class ShardedLru {
 public:
  static constexpr std::size_t kShards = 8;

  void set_capacity(std::size_t max_entries) {
    per_shard_ = max_entries / kShards + (max_entries % kShards != 0 ? 1 : 0);
    if (per_shard_ == 0) per_shard_ = 1;
  }

  std::shared_ptr<const T> find(std::uint64_t key) {
    Shard& shard = shards_[key % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) return nullptr;
    shard.order.splice(shard.order.begin(), shard.order, it->second);  // touch: move to MRU
    return it->second->value;
  }

  /// Inserts (or replaces) the value for `key`. `bytes` is the entry's
  /// approximate footprint, used only for accounting.
  void insert(std::uint64_t key, std::shared_ptr<const T> value, std::uint64_t bytes,
              std::uint64_t* evictions_out, std::uint64_t* bytes_delta_out) {
    Shard& shard = shards_[key % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    std::uint64_t evicted = 0;
    std::int64_t delta = static_cast<std::int64_t>(bytes);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      delta -= static_cast<std::int64_t>(it->second->bytes);
      shard.order.erase(it->second);
      shard.index.erase(it);
    }
    shard.order.push_front(Slot{key, std::move(value), bytes});
    shard.index[key] = shard.order.begin();
    while (shard.order.size() > per_shard_) {
      const Slot& victim = shard.order.back();
      delta -= static_cast<std::int64_t>(victim.bytes);
      shard.index.erase(victim.key);
      shard.order.pop_back();
      ++evicted;
    }
    if (evictions_out != nullptr) *evictions_out = evicted;
    if (bytes_delta_out != nullptr) {
      *bytes_delta_out = static_cast<std::uint64_t>(delta < 0 ? 0 : delta);
      shard.bytes += delta;
    }
  }

  void clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.order.clear();
      shard.index.clear();
      shard.bytes = 0;
    }
  }

  [[nodiscard]] std::uint64_t bytes() const {
    std::uint64_t total = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += static_cast<std::uint64_t>(shard.bytes < 0 ? 0 : shard.bytes);
    }
    return total;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.order.size();
    }
    return total;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::shared_ptr<const T> value;
    std::uint64_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Slot> order;  // MRU at front
    std::unordered_map<std::uint64_t, typename std::list<Slot>::iterator> index;
    std::int64_t bytes = 0;
  };
  mutable Shard shards_[kShards];
  std::size_t per_shard_ = 32;
};

/// The process-wide analysis cache. Thread-safe; all methods may be
/// called concurrently (sweep shards do).
class AnalysisCache {
 public:
  void configure(const CacheConfig& config);
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::shared_ptr<const LoweredEntry> find_lowered(std::uint64_t key);
  void insert_lowered(std::uint64_t key, std::shared_ptr<const LoweredEntry> entry);

  std::shared_ptr<const GraphEntry> find_graph(std::uint64_t key);
  void insert_graph(std::uint64_t key, std::shared_ptr<const GraphEntry> entry);

  std::shared_ptr<const MappingEntry> find_mapping(std::uint64_t key);
  void insert_mapping(std::uint64_t key, std::uint64_t family_key,
                      std::shared_ptr<const MappingEntry> entry);

  /// Most recent simplex basis recorded for a model family (the mapping
  /// key stripped of its time budget) — warm-start material for a
  /// re-solve of the same model under a different budget. Empty when
  /// none is known.
  [[nodiscard]] std::vector<std::size_t> family_basis(std::uint64_t family_key) const;

  /// Aggregate counters over all stages (also published to obs metrics
  /// with per-stage labels as they change).
  [[nodiscard]] CacheStats stats() const;

  /// Drops all entries and zeroes the counters (tests; --cache=off
  /// keeps the structures but bypasses them).
  void clear();

 private:
  std::atomic<bool> enabled_{true};
  ShardedLru<LoweredEntry> lowered_;
  ShardedLru<GraphEntry> graphs_;
  ShardedLru<MappingEntry> mappings_;
  mutable std::mutex family_mu_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> family_bases_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// The process-wide cache instance used by Analyzer/sweep/bench.
AnalysisCache& analysis_cache();

// -- Key derivation ---------------------------------------------------------

/// Digest of an LNIC profile: name, every parameter (via the store's
/// canonical serialization) and the graph structure — any Π/Γ/Θ change
/// lands in one of those.
std::uint64_t hash_profile(const lnic::NicProfile& profile);

/// Digest of the workload-derived cost hints.
std::uint64_t hash_hints(const passes::CostHints& hints);

/// Key of the lowering front-end result.
std::uint64_t lowered_key(std::uint64_t input_fn_hash, bool pattern_matching, bool optimize_ir);

/// Key of a dataflow graph built from a lowered function under hints.
std::uint64_t graph_key(std::uint64_t lowered_fn_hash, std::uint64_t hints_hash,
                        std::uint64_t profile_hash);

/// Key of a mapping solve; `family_out` (optional) receives the same key
/// with the time budget left out — the warm-basis family.
std::uint64_t mapping_key(std::uint64_t graph_digest, const mapping::MapOptions& options,
                          bool use_ilp, std::uint64_t* family_out = nullptr);

}  // namespace clara::core
