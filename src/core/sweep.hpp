// Sharded sweep driver — concurrent (seed, load-point, param-vector)
// evaluations over the simulator/predictor.
//
// A sweep is a grid of independent evaluation points. Each point gets
// its own deterministic RNG stream (parallel::shard_seed of the base
// seed and the point index, so shards stay statistically independent)
// and its own metrics sinks (a common::Histogram plus an Accumulator,
// both mergeable), and the points run concurrently on the shared
// parallel::pool(). Results come back in point-index order, so a sweep's
// output is identical at every jobs level — the pool only changes wall
// time. bench/ binaries and the predictor sensitivity sweep below are
// the main consumers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/clara.hpp"

namespace clara::core {

/// One evaluation point of a sweep grid.
struct SweepPoint {
  std::size_t index = 0;        // position in the grid == shard id
  std::uint64_t seed = 0;       // per-shard RNG stream
  double load_pps = 0.0;        // offered load (0 when the sweep has none)
  std::vector<double> params;   // free-form parameter vector
};

/// Per-shard outcome. The evaluator fills value/stats/histogram; the
/// driver pre-sizes the histogram with the layout from SweepOptions so
/// shards merge cleanly.
struct SweepResult {
  SweepPoint point;
  double value = 0.0;        // headline scalar, evaluator-defined
  Accumulator stats;         // per-shard samples (exact moments)
  Histogram histogram{0.0, 0.0, 0};
  bool ok = true;
  std::string error;
  /// Evaluations this shard took (2 when the driver retried it).
  std::uint32_t attempts = 1;
};

/// Per-sweep failure accounting for the retry-once-then-record policy:
/// a shard whose eval reports ok == false is re-evaluated once after a
/// short backoff; a second failure is recorded here instead of aborting
/// the sweep. Mergeable across sweeps like Histograms.
struct SweepFailureSummary {
  std::uint64_t shards = 0;     // points driven
  std::uint64_t retried = 0;    // shards that needed a retry
  std::uint64_t recovered = 0;  // retries that then succeeded
  std::uint64_t failed = 0;     // shards still failing after the retry
  /// "shard N: message" lines in point-index order, capped at kMaxErrors.
  static constexpr std::size_t kMaxErrors = 16;
  std::vector<std::string> errors;

  void merge(const SweepFailureSummary& other);
  [[nodiscard]] bool any_failures() const { return failed > 0; }
  /// One-line human-readable summary for reports/CLI.
  [[nodiscard]] std::string describe() const;
};

struct SweepOptions {
  /// Concurrency (0 = global parallel::jobs(), 1 = serial).
  std::size_t jobs = 0;
  /// Layout for each shard's histogram.
  double hist_lo = 0.0;
  double hist_hi = 1'000'000.0;
  std::size_t hist_buckets = 64;
};

using SweepEval = std::function<void(const SweepPoint&, SweepResult&)>;

/// Cross product of load points and parameter vectors (either may be
/// empty — an empty axis contributes a single neutral element), with
/// per-point seeds derived from base_seed.
std::vector<SweepPoint> make_grid(const std::vector<double>& loads_pps,
                                  const std::vector<std::vector<double>>& params,
                                  std::uint64_t base_seed);

/// Runs eval over every point concurrently. The eval must only touch its
/// own SweepResult (plus caller-provided per-index slots); the driver
/// guarantees results[i].point == points[i] and index order in the
/// returned vector regardless of scheduling. A shard that reports
/// ok == false is retried once with a fresh SweepResult after a short
/// backoff; shards that fail twice stay in the output with ok == false
/// and are tallied into `failures` (merged in, when non-null) — the
/// sweep itself never aborts.
std::vector<SweepResult> run_sweep(const std::vector<SweepPoint>& points, const SweepEval& eval,
                                   const SweepOptions& options = {},
                                   SweepFailureSummary* failures = nullptr);

/// Merged view of all shard histograms/accumulators (Histogram::merge /
/// Accumulator::merge). Shards that failed (ok == false) are skipped.
Histogram merge_histograms(const std::vector<SweepResult>& results, const SweepOptions& options);
Accumulator merge_stats(const std::vector<SweepResult>& results);

/// Predictor sensitivity sweep: re-predicts an analyzed NF at each
/// offered load, regenerating the workload per point on an independent
/// seed stream. The mapping is NOT recomputed — the sweep answers "how
/// does the predicted latency/throughput of *this* mapping move with
/// load", the what-if question Clara exists for (paper §3.5).
struct LoadSweepPoint {
  double pps = 0.0;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;
  Prediction prediction;
};

std::vector<LoadSweepPoint> predict_load_sweep(const Analyzer& analyzer, const Analysis& analysis,
                                               const workload::WorkloadProfile& profile,
                                               const std::vector<double>& loads_pps,
                                               const AnalyzeOptions& options = {},
                                               std::size_t jobs = 0,
                                               SweepFailureSummary* failures = nullptr);

}  // namespace clara::core
