// Adversarial workload synthesis — inspired by CASTAN [Pedrosa et al.,
// SIGCOMM'18], which the paper positions as complementary related work:
// where Clara predicts performance for a *given* workload, this module
// turns the predictor around and searches workload space for the traffic
// mix that maximizes predicted latency. Useful for capacity planning and
// for understanding which workload axis an NF is most sensitive to.
//
// Search: coordinate ascent over the abstract-profile axes (payload
// size, flow count, popularity skew, TCP share) using the analyzer as
// the objective function. The predictor is milliseconds per evaluation,
// so an exhaustive-ish sweep is affordable.
#pragma once

#include <string>
#include <vector>

#include "core/clara.hpp"

namespace clara::core {

struct AdversarialStep {
  std::string profile;    // serialized workload profile
  double latency_cycles;  // predicted mean latency under it
};

struct AdversarialResult {
  workload::WorkloadProfile worst;
  double worst_latency_cycles = 0.0;
  double seed_latency_cycles = 0.0;
  /// Accepted ascent steps, in order (for reporting).
  std::vector<AdversarialStep> trajectory;
  std::size_t evaluations = 0;
};

struct AdversarialOptions {
  /// Packets per evaluation trace (small: only class structure matters).
  std::uint64_t packets = 5000;
  std::size_t max_evaluations = 200;
  /// Axis candidate values.
  std::vector<std::uint16_t> payloads = {64, 300, 700, 1000, 1200, 1500};
  std::vector<std::uint32_t> flow_counts = {100, 1000, 10'000, 100'000};
  std::vector<double> zipf_alphas = {0.0, 0.6, 1.0, 1.3};
  std::vector<double> tcp_fractions = {0.0, 0.5, 1.0};
};

/// Finds a latency-maximizing workload profile for the NF on the
/// analyzer's NIC, starting from `seed` (its pps/packet-count are kept).
Result<AdversarialResult> find_adversarial_workload(const Analyzer& analyzer, const cir::Function& nf,
                                                    const workload::WorkloadProfile& seed,
                                                    const AdversarialOptions& options = {});

}  // namespace clara::core
