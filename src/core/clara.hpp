// Clara — the top-level API (paper Fig. 2 workflow).
//
//   Analyzer clara(lnic::netronome_agilio_cx());
//   auto analysis = clara.analyze(my_nf_cir, trace);
//   // analysis.value().prediction.mean_latency_cycles, .report, ...
//
// analyze() runs the full pipeline on an *unported* NF:
//   API substitution (framework calls -> virtual calls)
//   -> idiom pattern matching (checksum/scan loops -> vcalls)
//   -> verification
//   -> dataflow-graph construction
//   -> ILP mapping onto the parameterized LNIC (Π, Γ, Θ)
//   -> workload replay and latency/throughput prediction.
#pragma once

#include <optional>
#include <string>

#include "cir/function.hpp"
#include "core/predict.hpp"
#include "lnic/profiles.hpp"
#include "mapping/mapping.hpp"
#include "passes/api_subst.hpp"
#include "passes/optimize.hpp"
#include "passes/patterns.hpp"
#include "workload/tracegen.hpp"

namespace clara::core {

struct AnalyzeOptions {
  /// false selects the greedy baseline mapper (ablation).
  bool use_ilp = true;
  /// false skips idiom pattern matching (ablation) — byte loops then map
  /// as general NPU code.
  bool pattern_matching = true;
  /// Run constant folding / DCE / CFG cleanup before analysis (what a
  /// real front-end's -O pipeline would already have done).
  bool optimize_ir = true;
  /// Treat calls Clara cannot recognize as an error (default) or ignore
  /// them (costing them zero).
  bool fail_on_unknown_calls = true;
  mapping::MapOptions map;
  PredictOptions predict;
};

struct Analysis {
  /// The NF after substitution and pattern collapse (what was mapped).
  cir::Function lowered;
  passes::SubstitutionReport substitution;
  passes::PatternReport patterns;
  passes::OptimizeReport optimizations;
  mapping::Mapping mapping;
  Prediction prediction;
  /// Human-readable porting plan (paper §6 "offloading hints").
  std::string report;
};

class Analyzer {
 public:
  explicit Analyzer(lnic::NicProfile profile) : profile_(std::move(profile)) {}

  /// Analyzes an unported NF against a workload trace. The offered rate
  /// is taken from the trace's profile unless options.map.pps overrides.
  [[nodiscard]] Result<Analysis> analyze(const cir::Function& nf, const workload::Trace& trace,
                                         const AnalyzeOptions& options = {}) const;

  [[nodiscard]] const lnic::NicProfile& profile() const { return profile_; }

 private:
  lnic::NicProfile profile_;
};

/// Co-resident interference analysis (paper §3.5): each NF gets half the
/// NIC's compute parallelism and sees the other's working set as EMEM
/// cache pressure. Returns the two degraded analyses.
struct CoResident {
  Analysis first;
  Analysis second;
};
Result<CoResident> analyze_coresident(const Analyzer& analyzer, const cir::Function& nf_a,
                                      const workload::Trace& trace_a, const cir::Function& nf_b,
                                      const workload::Trace& trace_b, const AnalyzeOptions& options = {});

}  // namespace clara::core
