// Clara — the top-level API (paper Fig. 2 workflow).
//
//   Analyzer clara(lnic::netronome_agilio_cx());
//   auto analysis = clara.analyze(my_nf_cir, trace);
//   // analysis.value().prediction.mean_latency_cycles, .report, ...
//
// analyze() runs the full pipeline on an *unported* NF:
//   API substitution (framework calls -> virtual calls)
//   -> idiom pattern matching (checksum/scan loops -> vcalls)
//   -> verification
//   -> dataflow-graph construction
//   -> ILP mapping onto the parameterized LNIC (Π, Γ, Θ)
//   -> workload replay and latency/throughput prediction.
#pragma once

#include <optional>
#include <string>

#include "cir/function.hpp"
#include "core/predict.hpp"
#include "lnic/profiles.hpp"
#include "mapping/mapping.hpp"
#include "passes/api_subst.hpp"
#include "passes/optimize.hpp"
#include "passes/patterns.hpp"
#include "workload/tracegen.hpp"

namespace clara::core {

/// Which pipeline stages analyze() runs — one bitmask replacing the
/// three boolean ablation flags this API grew historically. API
/// substitution, verification, graph construction, and prediction always
/// run; the mask controls the optional transforms and the mapper choice.
struct PipelineStages {
  enum Stage : std::uint32_t {
    /// Idiom pattern matching — checksum/scan byte loops collapse to
    /// vcalls (off: loops map as general NPU code).
    kPatterns = 1u << 0,
    /// Constant folding / DCE / CFG cleanup before analysis (what a real
    /// front-end's -O pipeline would already have done).
    kOptimize = 1u << 1,
    /// The ILP mapper (off: the greedy baseline — ablation).
    kIlp = 1u << 2,
  };

  std::uint32_t mask = kPatterns | kOptimize | kIlp;

  static constexpr PipelineStages full() { return {kPatterns | kOptimize | kIlp}; }
  static constexpr PipelineStages no_ilp() { return {kPatterns | kOptimize}; }
  static constexpr PipelineStages no_patterns() { return {kOptimize | kIlp}; }
  /// Nothing optional: raw IR, greedy mapping.
  static constexpr PipelineStages raw() { return {0}; }

  [[nodiscard]] constexpr bool patterns() const { return (mask & kPatterns) != 0; }
  [[nodiscard]] constexpr bool optimize() const { return (mask & kOptimize) != 0; }
  [[nodiscard]] constexpr bool ilp() const { return (mask & kIlp) != 0; }

  constexpr PipelineStages& set(Stage stage, bool on) {
    mask = on ? (mask | stage) : (mask & ~static_cast<std::uint32_t>(stage));
    return *this;
  }

  friend constexpr bool operator==(const PipelineStages&, const PipelineStages&) = default;
};

struct AnalyzeOptions {
  PipelineStages stages = PipelineStages::full();
  /// Treat calls Clara cannot recognize as an error (default) or ignore
  /// them (costing them zero).
  bool fail_on_unknown_calls = true;
  /// Consult/populate the process-wide analysis cache (core/cache). Also
  /// requires the cache itself to be enabled (CacheConfig::enabled).
  bool use_cache = true;
  mapping::MapOptions map;
  PredictOptions predict;
};

struct Analysis {
  /// The NF after substitution and pattern collapse (what was mapped).
  cir::Function lowered;
  passes::SubstitutionReport substitution;
  passes::PatternReport patterns;
  passes::OptimizeReport optimizations;
  mapping::Mapping mapping;
  Prediction prediction;
  /// Human-readable porting plan (paper §6 "offloading hints").
  std::string report;
  /// Mirrors mapping.degraded: the solver's time budget expired and the
  /// mapping is best-effort, not certified optimal.
  bool degraded = false;
  /// Mirrors mapping.repaired: this mapping came from incremental repair
  /// after resource loss (Analyzer::repair), not a cold solve.
  bool repaired = false;
};

/// Co-resident interference analysis result (paper §3.5): the two
/// analyses, each degraded by the other's presence.
struct CoResident {
  Analysis first;
  Analysis second;
};

class Analyzer {
 public:
  explicit Analyzer(lnic::NicProfile profile);

  /// Analyzes an unported NF against a workload trace. The offered rate
  /// is taken from the trace's profile unless options.map.pps overrides.
  [[nodiscard]] Result<Analysis> analyze(const cir::Function& nf, const workload::Trace& trace,
                                         const AnalyzeOptions& options = {}) const;

  /// Degraded-mode re-analysis after resource loss. Re-runs the lowering
  /// and graph stages against this analyzer's — typically faulted —
  /// profile (cache-warm where keys still match), then incrementally
  /// repairs `previous`'s mapping via mapping::Mapper::repair instead of
  /// solving cold: assignments to surviving resources stay pinned and
  /// only displaced nodes/states are re-solved. The repaired mapping is
  /// NOT inserted into the analysis cache (it is pinned to the previous
  /// assignment, not the model's optimum). `previous` should come from
  /// analyze() on the healthy profile with the same NF and stages.
  [[nodiscard]] Result<Analysis> repair(const cir::Function& nf, const workload::Trace& trace,
                                        const Analysis& previous,
                                        const AnalyzeOptions& options = {}) const;

  /// Co-resident interference analysis (paper §3.5): each NF gets half
  /// the NIC's compute parallelism and sees the other's working set as
  /// EMEM cache pressure.
  [[nodiscard]] Result<CoResident> coresident(const cir::Function& nf_a, const workload::Trace& trace_a,
                                              const cir::Function& nf_b, const workload::Trace& trace_b,
                                              const AnalyzeOptions& options = {}) const;

  [[nodiscard]] const lnic::NicProfile& profile() const { return profile_; }

  /// Content digest of the profile (cache-key component, computed once).
  [[nodiscard]] std::uint64_t profile_hash() const { return profile_hash_; }

 private:
  lnic::NicProfile profile_;
  std::uint64_t profile_hash_ = 0;
};

}  // namespace clara::core
