// Performance prediction — paper §3.5.
//
// Given a mapped NF and a workload, predict per-packet latency and
// idealized throughput. Clara does not execute a ported program; it
// replays the workload over the *mapping*:
//
//   1. the trace is collapsed into packet equivalence classes (protocol,
//      SYN, flow novelty, payload bucket) — the per-packet-type profiles
//      the paper describes ("TCP SYN packets experience higher latency,
//      but the following packets will hit the flow cache");
//   2. one representative packet per class is pushed through the CIR
//      interpreter against a workload model (tables answer hit/miss by
//      flow novelty), yielding block counts and vcall arguments;
//   3. the trace is priced against the mapping: instruction mixes and
//      vcall service curves on the assigned units, state accesses at the
//      placed regions — with the EMEM cache modeled by an estimated hit
//      rate (working set vs. cache capacity) rather than exact contents;
//   4. datapath constants (ingress DMA/spill, hubs, egress) and a
//      queueing term per shared unit (M/D/1-style) complete the number.
//
// The deliberate abstractions in (3)-(4) — hit-rate estimates, averaged
// NUMA weights, open-form queueing — are Clara's model error relative to
// the exact simulator, mirroring the paper's predictor-vs-hardware gap.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "mapping/mapping.hpp"
#include "obs/breakdown.hpp"
#include "workload/tracegen.hpp"

namespace clara::core {

/// A packet equivalence class with its predicted latency.
struct ClassProfile {
  std::string name;
  double fraction = 0.0;       // of trace packets
  double payload_len = 0.0;    // representative payload bytes
  double latency_cycles = 0.0; // predicted end-to-end latency
  bool tcp = false;
  bool syn = false;
  bool new_flow = false;
};

struct UnitLoad {
  std::string pool;
  double utilization = 0.0;     // of the pool's aggregate capacity
  double queue_wait_cycles = 0.0;
};

struct Prediction {
  double mean_latency_cycles = 0.0;
  double mean_latency_us = 0.0;
  /// Conservative worst-case latency (WCET-flavored, §3.5's pointer to
  /// the real-time literature): the slowest packet class priced with
  /// every cache access missing. A sound upper bound for the simulator's
  /// tail latency at non-saturating loads.
  double worst_case_cycles = 0.0;
  /// Idealized throughput: the offered rate at which the bottleneck pool
  /// saturates (paper: "idealized throughput estimations").
  double throughput_pps = 0.0;
  std::string bottleneck;
  std::vector<ClassProfile> classes;
  std::vector<UnitLoad> loads;
  /// Estimated hit rates the model used (exposed for ablation study).
  double emem_cache_hit_rate = 0.0;
  double flow_cache_hit_rate = 0.0;
  /// Analytic per-packet latency attribution. The components sum to
  /// mean_latency_cycles exactly (each term of the cost model is charged
  /// to exactly one component), so it lines up with the simulator's
  /// measured RunStats::breakdown for side-by-side comparison.
  obs::BreakdownMeans breakdown;
};

struct PredictOptions {
  /// Payload-size buckets for class formation.
  std::size_t payload_buckets = 8;
  /// Disables the EMEM cache hit-rate model (every access at full DRAM
  /// latency) — ablation knob.
  bool model_emem_cache = true;
  /// Disables queueing terms — ablation knob.
  bool model_queueing = true;
  /// Interference: fraction of the NIC this NF owns (1.0 = whole NIC);
  /// paper §3.5 "slice the LNIC to model half of the NIC".
  double nic_share = 1.0;
  /// Interference: extra EMEM-cache pressure from co-resident NFs, in
  /// bytes of competing working set.
  double foreign_cache_pressure_bytes = 0.0;
};

/// Predicts performance of a mapped NF on a workload. The function must
/// already be API-substituted and verified (the Analyzer facade does
/// this).
Result<Prediction> predict(const cir::Function& fn, const passes::DataflowGraph& graph,
                           const mapping::Mapping& mapping, const mapping::Mapper& mapper,
                           const workload::Trace& trace, const PredictOptions& options = {});

/// Workload-derived hint extraction shared by the mapper and predictor:
/// average payload, loop-trip parameters, and the flow-cache hit rate
/// estimated from observed flow popularity vs. cache capacity.
passes::CostHints hints_from_trace(const workload::Trace& trace, const lnic::NicProfile& profile);

}  // namespace clara::core
