#include "core/predict.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "cir/builder.hpp"
#include "cir/interp.hpp"
#include "common/strings.hpp"
#include "obs/trace.hpp"
#include "passes/costmodel.hpp"

namespace clara::core {

using passes::CostHints;
using passes::DataflowGraph;
namespace keys = lnic::keys;

namespace {

struct PacketClass {
  std::uint8_t proto = 6;
  bool syn = false;
  bool new_flow = false;
  std::uint32_t bucket = 0;
  std::uint64_t count = 0;
  double payload_sum = 0.0;
  workload::PacketMeta rep;

  [[nodiscard]] double payload() const {
    return count > 0 ? payload_sum / static_cast<double>(count) : 0.0;
  }
  [[nodiscard]] double frame_len() const { return payload() + (proto == 6 ? 54.0 : 42.0); }
  [[nodiscard]] std::string name() const {
    return strf("%s%s%s/p%.0f", proto == 6 ? "tcp" : "udp", syn ? "+syn" : "", new_flow ? "+new" : "",
                payload());
  }
};

std::vector<PacketClass> classify(const workload::Trace& trace, std::size_t buckets) {
  std::uint16_t lo = 0xffff, hi = 0;
  for (const auto& p : trace.packets) {
    lo = std::min(lo, p.payload_len);
    hi = std::max(hi, p.payload_len);
  }
  const double width = hi > lo ? static_cast<double>(hi - lo) / static_cast<double>(buckets) : 1.0;

  std::unordered_set<std::uint32_t> seen_flows;
  std::map<std::uint32_t, PacketClass> classes;
  for (const auto& p : trace.packets) {
    const bool new_flow = seen_flows.insert(p.flow_id).second;
    auto bucket = static_cast<std::uint32_t>((p.payload_len - lo) / width);
    if (bucket >= buckets) bucket = static_cast<std::uint32_t>(buckets) - 1;
    const std::uint32_t key = p.proto | (p.is_syn() ? 1u << 8 : 0) | (new_flow ? 1u << 9 : 0) | (bucket << 16);
    auto& cls = classes[key];
    if (cls.count == 0) {
      cls.proto = p.proto;
      cls.syn = p.is_syn();
      cls.new_flow = new_flow;
      cls.bucket = bucket;
      cls.rep = p;
    }
    ++cls.count;
    cls.payload_sum += p.payload_len;
  }
  std::vector<PacketClass> out;
  out.reserve(classes.size());
  for (auto& [key, cls] : classes) out.push_back(std::move(cls));
  return out;
}

/// Answers vcalls from the class's representative packet and a flow
/// model: hash tables keyed by flow hit exactly when the flow is not
/// new (the workload model the paper calls "simulate the execution for
/// the set of packets").
class ModelHandler final : public cir::VCallHandler {
 public:
  ModelHandler(const PacketClass& cls, const cir::Function& fn) : cls_(cls), fn_(fn) {}

  std::uint64_t handle(cir::VCall v, std::span<const std::uint64_t> args) override {
    using cir::VCall;
    switch (v) {
      case VCall::kGetHdr: {
        const auto field = static_cast<cir::HdrField>(args[0]);
        using cir::HdrField;
        switch (field) {
          case HdrField::kProto: return cls_.proto;
          case HdrField::kSrcIp: return cls_.rep.src_ip;
          case HdrField::kDstIp: return cls_.rep.dst_ip;
          case HdrField::kSrcPort: return cls_.rep.src_port;
          case HdrField::kDstPort: return cls_.rep.dst_port;
          case HdrField::kTcpFlags: return cls_.syn ? cir::kTcpFlagSyn : 0;
          case HdrField::kPayloadLen: return static_cast<std::uint64_t>(cls_.payload());
          case HdrField::kPktLen: return static_cast<std::uint64_t>(cls_.frame_len());
          case HdrField::kFlowHash: return cls_.rep.flow_hash();
        }
        return 0;
      }
      case VCall::kTableLookup: {
        const auto& state = fn_.state_objects[args[0]];
        if (state.pattern == cir::StatePattern::kHashTable) return cls_.new_flow ? 0 : 1;
        return 1;
      }
      case VCall::kMeter:
        return 1;  // conforming
      case VCall::kCsum:
        return 0xbeef;
      default:
        return 0;
    }
  }

 private:
  const PacketClass& cls_;
  const cir::Function& fn_;
};

}  // namespace

CostHints hints_from_trace(const workload::Trace& trace, const lnic::NicProfile& profile) {
  CostHints hints;
  hints.avg_payload = trace.mean_payload();
  hints.params["payload_len"] = hints.avg_payload;
  hints.params["pkt_len"] = hints.avg_payload + 54.0;

  // Flow-cache hit rate: coverage of the top-capacity flows, less one
  // compulsory miss per cached flow.
  const double capacity = profile.params.try_scalar(keys::kFlowCacheCapacity).value_or(0.0);
  if (capacity > 0.0 && !trace.packets.empty()) {
    std::unordered_map<std::uint32_t, std::uint64_t> counts;
    for (const auto& p : trace.packets) ++counts[p.flow_id];
    std::vector<std::uint64_t> sorted;
    sorted.reserve(counts.size());
    for (const auto& [flow, count] : counts) sorted.push_back(count);
    std::sort(sorted.rbegin(), sorted.rend());
    const auto top = std::min<std::size_t>(static_cast<std::size_t>(capacity), sorted.size());
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < top; ++i) covered += sorted[i];
    const double total = static_cast<double>(trace.packets.size());
    hints.flow_cache_hit_rate = std::max(0.0, (static_cast<double>(covered) - static_cast<double>(top)) / total);
  } else {
    hints.flow_cache_hit_rate = 0.0;
  }
  return hints;
}

Result<Prediction> predict(const cir::Function& fn, const DataflowGraph& graph, const mapping::Mapping& mapping,
                           const mapping::Mapper& mapper, const workload::Trace& trace,
                           const PredictOptions& options) {
  CLARA_TRACE_SCOPE("predict/run");
  if (trace.packets.empty()) return make_error("predict: empty trace");
  const auto& profile = mapper.profile();
  const auto& params = profile.params;
  const CostHints hints = hints_from_trace(trace, profile);

  // --- EMEM cache hit-rate estimate (working set vs. capacity) ----------
  double emem_ws = options.foreign_cache_pressure_bytes;
  Bytes emem_cache_capacity = 0;
  for (const NodeId region : profile.graph.memory_regions()) {
    const auto* mem = profile.graph.node(region).memory();
    if (mem->kind == lnic::MemKind::kEmem) emem_cache_capacity = mem->cache_capacity;
  }
  const std::uint32_t distinct = trace.distinct_flows();
  for (std::size_t s = 0; s < fn.state_objects.size(); ++s) {
    const NodeId region = mapping.state_region[s];
    const auto* mem = profile.graph.node(region).memory();
    if (mem->kind != lnic::MemKind::kEmem) continue;
    const auto& obj = fn.state_objects[s];
    double active = static_cast<double>(obj.total_bytes());
    if (obj.pattern == cir::StatePattern::kHashTable) {
      active = std::min(active, static_cast<double>(distinct) * static_cast<double>(obj.entry_bytes));
    }
    emem_ws += active;
  }
  // Spilled packet tails occupy a recycled buffer pool (~1k regions of
  // 2 kB); they join the contended working set and, when the pool fits
  // in what the state leaves of the cache, tail reads mostly hit.
  const double residency = params.scalar(keys::kCtmPacketResidency);
  const double avg_frame = trace.mean_payload() + 54.0;
  const double tail_pool = 1024.0 * 2048.0;
  const bool tails_spill = residency > 0.0 && avg_frame > residency;
  if (tails_spill) emem_ws += tail_pool;

  double hr_emem = 1.0;
  if (emem_ws > 0.0 && emem_cache_capacity > 0) {
    hr_emem = std::min(1.0, static_cast<double>(emem_cache_capacity) / emem_ws);
  }
  double hr_tail = 0.0;
  if (tails_spill && emem_cache_capacity > 0) {
    const double state_ws = emem_ws - tail_pool;
    hr_tail = std::clamp((static_cast<double>(emem_cache_capacity) - state_ws) / tail_pool, 0.0, 1.0);
  }
  if (!options.model_emem_cache) {
    hr_emem = 0.0;
    hr_tail = 0.0;
  }

  // Interference slicing scales available parallelism.
  const double share = std::clamp(options.nic_share, 0.05, 1.0);

  // Packet-byte access price with the cache-aware tail model: bytes in
  // the CTM head at CTM latency, spilled tail bytes at the estimated
  // tail hit rate.
  auto pkt_access_cycles = [&](double frame) {
    const double ctm = params.scalar(keys::kMemReadCtm);
    if (residency <= 0.0) return params.scalar(keys::kEmemCacheHit);
    if (frame <= residency) return ctm;
    const double tail_lat =
        hr_tail * params.scalar(keys::kEmemCacheHit) + (1.0 - hr_tail) * params.scalar(keys::kMemReadEmem);
    const double head_frac = residency / frame;
    return head_frac * ctm + (1.0 - head_frac) * tail_lat;
  };

  // Effective state-access latency under the cache model. `worst`
  // prices every cacheable access as a miss (the WCET bound).
  auto eff_state_latency = [&](const mapping::UnitPool& pool, NodeId region, bool worst = false) {
    const double base = mapper.access_cycles(pool, region);
    const auto* mem = profile.graph.node(region).memory();
    if (!worst && mem->kind == lnic::MemKind::kEmem && mem->cache_capacity > 0) {
      return hr_emem * params.scalar(keys::kEmemCacheHit) + (1.0 - hr_emem) * base;
    }
    return base;
  };

  // --- Breakdown attribution helpers --------------------------------------
  // Each mirrors the corresponding cost term above exactly, splitting it
  // across obs::Component buckets so the per-class components sum to the
  // class's base latency by construction.
  using obs::Component;
  auto add_pkt_access_bd = [&](obs::BreakdownMeans& bd, double n, double frame) {
    if (n <= 0.0) return;
    if (residency <= 0.0) {
      bd.add(Component::kEmemCacheHit, n * params.scalar(keys::kEmemCacheHit));
      return;
    }
    const double ctm = params.scalar(keys::kMemReadCtm);
    if (frame <= residency) {
      bd.add(Component::kMemCtm, n * ctm);
      return;
    }
    const double head_frac = residency / frame;
    bd.add(Component::kMemCtm, n * head_frac * ctm);
    const double tail = n * (1.0 - head_frac);
    bd.add(Component::kEmemCacheHit, tail * hr_tail * params.scalar(keys::kEmemCacheHit));
    bd.add(Component::kEmemCacheMiss, tail * (1.0 - hr_tail) * params.scalar(keys::kMemReadEmem));
  };
  auto add_state_bd = [&](obs::BreakdownMeans& bd, double n, const mapping::UnitPool& pool,
                          NodeId region) {
    if (n <= 0.0) return;
    const double base = mapper.access_cycles(pool, region);
    const auto* mem = profile.graph.node(region).memory();
    if (mem->kind == lnic::MemKind::kEmem && mem->cache_capacity > 0) {
      bd.add(Component::kEmemCacheHit, n * hr_emem * params.scalar(keys::kEmemCacheHit));
      bd.add(Component::kEmemCacheMiss, n * (1.0 - hr_emem) * base);
      return;
    }
    switch (mem->kind) {
      case lnic::MemKind::kLocal: bd.add(Component::kMemLocal, n * base); break;
      case lnic::MemKind::kCtm: bd.add(Component::kMemCtm, n * base); break;
      case lnic::MemKind::kImem: bd.add(Component::kMemImem, n * base); break;
      case lnic::MemKind::kEmem: bd.add(Component::kEmemCacheMiss, n * base); break;
    }
  };
  auto unit_component = [](lnic::UnitKind kind) {
    switch (kind) {
      case lnic::UnitKind::kChecksumAccel: return Component::kCsumAccel;
      case lnic::UnitKind::kCryptoAccel: return Component::kCryptoAccel;
      case lnic::UnitKind::kLpmEngine: return Component::kLpmEngine;
      case lnic::UnitKind::kNpuCore:
      case lnic::UnitKind::kHeaderEngine: break;
    }
    return Component::kCompute;
  };

  // --- Per-class costing --------------------------------------------------
  auto classes = classify(trace, options.payload_buckets);
  const double total_packets = static_cast<double>(trace.packets.size());

  struct ClassCost {
    double base = 0.0;                       // latency without queueing
    double worst = 0.0;                      // all cache accesses priced as misses
    std::map<std::size_t, double> pool_use;  // pool -> service cycles (queueable)
    obs::BreakdownMeans bd;                  // component attribution of `base`
  };
  std::vector<ClassCost> costs(classes.size());
  std::vector<double> pool_demand(mapper.pools().size(), 0.0);  // cycles/packet avg

  const double hub_service = params.scalar(keys::kHubService);
  const double ingress_base = params.scalar(keys::kIngressDmaBase);
  const double ingress_per_byte = params.scalar(keys::kIngressDmaPerByte);
  const double spill_per_byte = params.scalar(keys::kSpillPerByte);

  for (std::size_t c = 0; c < classes.size(); ++c) {
    const PacketClass& cls = classes[c];
    ModelHandler handler(cls, fn);
    cir::Interpreter interp(fn, handler);
    auto exec = interp.run();
    if (!exec) return make_error("predict: interpretation failed: " + exec.error().message);
    const cir::ExecTrace& et = exec.value();

    ClassCost& cost = costs[c];
    const double frame = cls.frame_len();
    cost.base += hub_service + ingress_base + ingress_per_byte * frame;
    if (residency > 0.0 && frame > residency) cost.base += spill_per_byte * (frame - residency);
    cost.worst = cost.base;
    cost.bd.add(Component::kIngress, cost.base);

    // Node bodies: instruction mixes, packet accesses, explicit state ops.
    for (const auto& node : graph.nodes()) {
      const std::uint64_t execs = et.block_counts[node.block];
      if (execs == 0) continue;
      const auto& pool = mapper.pools()[mapping.node_pool[node.id]];
      double per_exec = passes::mix_compute_cycles(node.mix, pool.kind, params);
      per_exec += static_cast<double>(node.mix.packet_loads + node.mix.packet_stores) * pkt_access_cycles(frame);
      for (const auto& [s, n] : node.mix.state_reads) {
        per_exec += static_cast<double>(n) * eff_state_latency(pool, mapping.state_region[s]);
      }
      for (const auto& [s, n] : node.mix.state_writes) {
        per_exec += static_cast<double>(n) * eff_state_latency(pool, mapping.state_region[s]);
      }
      const double cycles = static_cast<double>(execs) * per_exec;
      cost.base += cycles;
      const auto n_execs = static_cast<double>(execs);
      cost.bd.add(Component::kCompute, n_execs * passes::mix_compute_cycles(node.mix, pool.kind, params));
      add_pkt_access_bd(cost.bd, n_execs * static_cast<double>(node.mix.packet_loads + node.mix.packet_stores),
                        frame);
      for (const auto& [s, n] : node.mix.state_reads) {
        add_state_bd(cost.bd, n_execs * static_cast<double>(n), pool, mapping.state_region[s]);
      }
      for (const auto& [s, n] : node.mix.state_writes) {
        add_state_bd(cost.bd, n_execs * static_cast<double>(n), pool, mapping.state_region[s]);
      }
      double per_exec_worst = passes::mix_compute_cycles(node.mix, pool.kind, params);
      per_exec_worst += static_cast<double>(node.mix.packet_loads + node.mix.packet_stores) *
                        passes::packet_access_cycles(frame, frame - 1.0, params);
      for (const auto& [s, n] : node.mix.state_reads) {
        per_exec_worst += static_cast<double>(n) * eff_state_latency(pool, mapping.state_region[s], true);
      }
      for (const auto& [s, n] : node.mix.state_writes) {
        per_exec_worst += static_cast<double>(n) * eff_state_latency(pool, mapping.state_region[s], true);
      }
      cost.worst += static_cast<double>(execs) * per_exec_worst;
      cost.pool_use[mapping.node_pool[node.id]] += static_cast<double>(execs) *
                                                   passes::mix_compute_cycles(node.mix, pool.kind, params);
    }

    // Vcall events with their concrete arguments.
    for (const auto& event : et.vcalls) {
      const std::uint32_t node_id = graph.node_of(event.block, event.instr);
      if (node_id == ~0u) continue;
      const std::size_t pool_idx = mapping.node_pool[node_id];
      const auto& pool = mapper.pools()[pool_idx];
      const cir::StateObject* state = nullptr;
      std::uint32_t state_idx = ~0u;
      if (cir::vcall_takes_state(event.v) && !event.args.empty()) {
        state_idx = static_cast<std::uint32_t>(event.args[0]);
        state = &fn.state_objects[state_idx];
      }
      double arg = hints.avg_payload;
      if (event.v == cir::VCall::kCsum || event.v == cir::VCall::kCrypto ||
          event.v == cir::VCall::kPayloadScan) {
        arg = static_cast<double>(event.args[0]);
      }
      const bool use_fc =
          event.v != cir::VCall::kLpmLookup || (event.args.size() >= 3 && event.args[2] != 0);
      double service = passes::vcall_compute_cycles(event.v, pool.kind, arg, state, params, hints, use_fc);
      cost.bd.add(event.v == cir::VCall::kEmit ? Component::kEgress : unit_component(pool.kind), service);
      if (event.v == cir::VCall::kPayloadScan) {
        service += std::ceil(arg / 64.0) * pkt_access_cycles(frame);
        add_pkt_access_bd(cost.bd, std::ceil(arg / 64.0), frame);
      }
      if (event.v == cir::VCall::kEmit) {
        service += hub_service;  // egress hub
        cost.bd.add(Component::kEgress, hub_service);
      }
      cost.base += service;
      // Worst case: the flow cache misses too.
      passes::CostHints worst_hints = hints;
      worst_hints.flow_cache_hit_rate = 0.0;
      double worst_service =
          passes::vcall_compute_cycles(event.v, pool.kind, arg, state, params, worst_hints, use_fc);
      // Deepest match-action walk: per-key walk depth varies around the
      // microbenchmarked mean curve; allow ~15% for the worst key.
      if (event.v == cir::VCall::kLpmLookup) worst_service *= 1.15;
      if (event.v == cir::VCall::kPayloadScan) {
        worst_service += std::ceil(arg / 64.0) * passes::packet_access_cycles(frame, frame - 1.0, params);
      }
      if (event.v == cir::VCall::kEmit) worst_service += hub_service;
      cost.worst += worst_service;

      if (state_idx != ~0u) {
        const double accesses = passes::vcall_state_accesses(event.v, pool.kind, state);
        cost.base += accesses * eff_state_latency(pool, mapping.state_region[state_idx]);
        cost.worst += accesses * eff_state_latency(pool, mapping.state_region[state_idx], true);
        add_state_bd(cost.bd, accesses, pool, mapping.state_region[state_idx]);
      }

      // Queueable share: LPM DRAM walks overlap across threads, so only
      // the SRAM front-end occupies the engine.
      double queueable = service;
      if (event.v == cir::VCall::kLpmLookup && pool.kind == lnic::UnitKind::kLpmEngine) {
        queueable = params.scalar(keys::kFlowCacheHit);
      }
      cost.pool_use[pool_idx] += queueable;
    }

    const double fraction = static_cast<double>(cls.count) / total_packets;
    for (const auto& [p, use] : cost.pool_use) pool_demand[p] += fraction * use;
  }

  // --- Queueing (Θ) and throughput ----------------------------------------
  const double clock = params.scalar(keys::kClockHz);
  const double pps = trace.profile.pps;
  const double lambda_cycles = pps / clock;  // packets per cycle

  Prediction pred;
  pred.emem_cache_hit_rate = hr_emem;
  pred.flow_cache_hit_rate = hints.flow_cache_hit_rate;

  std::vector<double> pool_wait(mapper.pools().size(), 0.0);
  double best_throughput = 1e18;
  for (std::size_t p = 0; p < mapper.pools().size(); ++p) {
    if (pool_demand[p] <= 0.0) continue;
    const double servers = std::max(1.0, mapper.pools()[p].parallelism * share);
    const double rho = lambda_cycles * pool_demand[p] / servers;
    double wait = 0.0;
    if (options.model_queueing) {
      if (rho < 1.0) {
        wait = (pool_demand[p] / servers) * rho / (2.0 * (1.0 - rho));  // M/D/c approximation
      } else {
        wait = 1e9;  // saturated
      }
    }
    pool_wait[p] = wait;
    pred.loads.push_back({mapper.pools()[p].name, rho, wait});
    const double cap_pps = servers * clock / pool_demand[p];
    if (cap_pps < best_throughput) {
      best_throughput = cap_pps;
      pred.bottleneck = mapper.pools()[p].name;
    }
  }
  // The ingress hub serves every packet once; it caps throughput for
  // NFs light enough that no compute pool binds first.
  const double hub_cap_pps = clock / std::max(1.0, hub_service);
  if (hub_cap_pps < best_throughput) {
    best_throughput = hub_cap_pps;
    pred.bottleneck = "ingress-hub";
  }
  pred.throughput_pps = best_throughput == 1e18 ? 0.0 : best_throughput;

  // --- Aggregate ------------------------------------------------------------
  double mean = 0.0;
  double worst_case = 0.0;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    double latency = costs[c].base;
    double worst = costs[c].worst;
    obs::BreakdownMeans class_bd = costs[c].bd;
    for (const auto& [p, use] : costs[c].pool_use) {
      if (use > 0.0) {
        latency += pool_wait[p];
        class_bd.add(obs::Component::kQueueWait, pool_wait[p]);
        worst += 3.0 * pool_wait[p];  // queue tail allowance
      }
    }
    worst_case = std::max(worst_case, worst);
    const double fraction = static_cast<double>(classes[c].count) / total_packets;
    mean += fraction * latency;
    pred.breakdown.add_scaled(class_bd, fraction);

    ClassProfile cp;
    cp.name = classes[c].name();
    cp.fraction = fraction;
    cp.payload_len = classes[c].payload();
    cp.latency_cycles = latency;
    cp.tcp = classes[c].proto == 6;
    cp.syn = classes[c].syn;
    cp.new_flow = classes[c].new_flow;
    pred.classes.push_back(std::move(cp));
  }
  std::sort(pred.classes.begin(), pred.classes.end(),
            [](const ClassProfile& a, const ClassProfile& b) { return a.fraction > b.fraction; });

  pred.mean_latency_cycles = mean;
  pred.mean_latency_us = mean / clock * 1e6;
  pred.worst_case_cycles = worst_case;
  return pred;
}

}  // namespace clara::core
