#include "core/request.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/json.hpp"
#include "common/strings.hpp"

namespace clara::core {

namespace {

/// Strict-object helper: every key must be known, and a near-miss gets
/// a did-you-mean suggestion (the same closest_match the CLI uses for
/// option typos).
Status check_keys(const Json::Object& object, const std::vector<std::string>& known,
                  const char* where) {
  for (const auto& [key, value] : object) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    std::string message = strf("unknown field \"%s\" in %s", key.c_str(), where);
    const std::string suggestion = closest_match(key, known);
    if (!suggestion.empty()) message += strf(" (did you mean \"%s\"?)", suggestion.c_str());
    return make_error(ErrorCode::kParse, std::move(message));
  }
  return {};
}

Status check_size(std::string_view text, const char* what) {
  if (text.size() > kMaxWireBytes) {
    return make_error(ErrorCode::kParse, strf("%s line too large (%zu bytes, limit %zu)", what,
                                              text.size(), kMaxWireBytes));
  }
  return {};
}

Status check_proto(const Json& root, const char* what) {
  if (!root.is_object()) {
    return make_error(ErrorCode::kParse, strf("%s must be a JSON object", what));
  }
  const std::string proto = root.string_at("proto");
  if (proto != kServeProtocol) {
    return make_error(ErrorCode::kParse,
                      strf("%s proto \"%s\" unsupported (this server speaks %s)", what,
                           proto.c_str(), kServeProtocol));
  }
  return {};
}

Result<RequestKind> parse_kind(const Json& root) {
  static const std::vector<std::string> kKinds = {"analyze", "sweep", "repair", "validate",
                                                  "hello"};
  const Json* kind = root.get("kind");
  if (kind == nullptr || !kind->is_string()) {
    return make_error(ErrorCode::kParse, "missing request kind (analyze|sweep|repair|validate)");
  }
  const std::string& name = kind->as_string();
  if (name == "analyze") return RequestKind::kAnalyze;
  if (name == "sweep") return RequestKind::kSweep;
  if (name == "repair") return RequestKind::kRepair;
  if (name == "validate") return RequestKind::kValidate;
  if (name == "hello") return RequestKind::kHello;
  std::string message = strf("unknown request kind \"%s\"", name.c_str());
  const std::string suggestion = closest_match(name, kKinds);
  if (!suggestion.empty()) message += strf(" (did you mean \"%s\"?)", suggestion.c_str());
  return make_error(ErrorCode::kParse, std::move(message));
}

ErrorCode parse_error_code(const std::string& name) {
  for (const ErrorCode code :
       {ErrorCode::kUnspecified, ErrorCode::kParse, ErrorCode::kVerify, ErrorCode::kUnknownCall,
        ErrorCode::kInfeasible, ErrorCode::kDeadline, ErrorCode::kInternal,
        ErrorCode::kOverloaded}) {
    if (name == to_string(code)) return code;
  }
  return ErrorCode::kUnspecified;
}

std::uint64_t parse_u64_string(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 10);
}

const char* bool_word(bool v) { return v ? "true" : "false"; }

}  // namespace

// --- Request -----------------------------------------------------------------

std::string Request::to_json() const {
  std::string out;
  out.reserve(512);
  out += "{\"proto\":";
  out += json_quote(kServeProtocol);
  out += ",\"id\":";
  out += json_quote(id);
  out += ",\"kind\":";
  out += json_quote(to_string(kind));
  out += ",\"nf\":";
  out += json_quote(nf);
  out += ",\"nf_cir\":";
  out += json_quote(nf_cir);
  out += ",\"nic\":";
  out += json_quote(nic);
  out += ",\"workload\":";
  out += json_quote(workload);
  out += ",\"trace_file\":";
  out += json_quote(trace_file);
  out += strf(",\"stages\":{\"patterns\":%s,\"optimize\":%s,\"ilp\":%s}",
              bool_word(options.stages.patterns()), bool_word(options.stages.optimize()),
              bool_word(options.stages.ilp()));
  out += strf(",\"fail_on_unknown_calls\":%s", bool_word(options.fail_on_unknown_calls));
  out += strf(",\"use_cache\":%s", bool_word(options.use_cache));
  out += ",\"map\":{\"pps\":";
  out += json_number(options.map.pps);
  out += ",\"ctm_state_fraction\":";
  out += json_number(options.map.ctm_state_fraction);
  out += strf(",\"max_ilp_nodes\":%llu", (unsigned long long)options.map.max_ilp_nodes);
  out += ",\"time_budget_ms\":";
  out += json_number(options.map.time_budget_ms);
  out += strf("},\"predict\":{\"payload_buckets\":%llu",
              (unsigned long long)options.predict.payload_buckets);
  out += strf(",\"model_emem_cache\":%s", bool_word(options.predict.model_emem_cache));
  out += strf(",\"model_queueing\":%s", bool_word(options.predict.model_queueing));
  out += ",\"nic_share\":";
  out += json_number(options.predict.nic_share);
  out += ",\"foreign_cache_pressure_bytes\":";
  out += json_number(options.predict.foreign_cache_pressure_bytes);
  out += "},\"sweep_pps\":[";
  for (std::size_t i = 0; i < sweep_pps.size(); ++i) {
    if (i != 0) out += ',';
    out += json_number(sweep_pps[i]);
  }
  out += "],\"fault_plan\":";
  out += json_quote(fault_plan);
  out += strf(",\"energy\":%s", bool_word(energy));
  out += strf(",\"breakdown\":%s", bool_word(breakdown));
  out += strf(",\"partial\":%s", bool_word(partial));
  out += strf(",\"paths\":%s}", bool_word(paths));
  return out;
}

Result<Request> Request::from_json(std::string_view text) {
  if (auto status = check_size(text, "request"); !status) return status.error();
  auto parsed = Json::parse(text);
  if (!parsed) return parsed.error();
  const Json& root = parsed.value();
  if (auto status = check_proto(root, "request"); !status) return status.error();

  static const std::vector<std::string> kTopKeys = {
      "proto",     "id",       "kind",      "nf",         "nf_cir",
      "nic",       "workload", "trace_file", "stages",    "fail_on_unknown_calls",
      "use_cache", "map",      "predict",   "sweep_pps",  "fault_plan",
      "energy",    "breakdown", "partial",  "paths"};
  if (auto status = check_keys(root.as_object(), kTopKeys, "request"); !status) {
    return status.error();
  }

  Request request;
  request.id = root.string_at("id");
  auto kind = parse_kind(root);
  if (!kind) return kind.error();
  request.kind = kind.value();
  request.nf = root.string_at("nf");
  request.nf_cir = root.string_at("nf_cir");
  request.nic = root.string_at("nic", request.nic);
  request.workload = root.string_at("workload");
  request.trace_file = root.string_at("trace_file");

  if (const Json* stages = root.get("stages"); stages != nullptr) {
    if (!stages->is_object()) {
      return make_error(ErrorCode::kParse, "\"stages\" must be an object");
    }
    static const std::vector<std::string> kStageKeys = {"patterns", "optimize", "ilp"};
    if (auto status = check_keys(stages->as_object(), kStageKeys, "stages"); !status) {
      return status.error();
    }
    request.options.stages.set(PipelineStages::kPatterns, stages->bool_at("patterns", true));
    request.options.stages.set(PipelineStages::kOptimize, stages->bool_at("optimize", true));
    request.options.stages.set(PipelineStages::kIlp, stages->bool_at("ilp", true));
  }
  request.options.fail_on_unknown_calls =
      root.bool_at("fail_on_unknown_calls", request.options.fail_on_unknown_calls);
  request.options.use_cache = root.bool_at("use_cache", request.options.use_cache);

  if (const Json* map = root.get("map"); map != nullptr) {
    if (!map->is_object()) return make_error(ErrorCode::kParse, "\"map\" must be an object");
    static const std::vector<std::string> kMapKeys = {"pps", "ctm_state_fraction",
                                                      "max_ilp_nodes", "time_budget_ms"};
    if (auto status = check_keys(map->as_object(), kMapKeys, "map"); !status) {
      return status.error();
    }
    request.options.map.pps = map->number_at("pps", request.options.map.pps);
    request.options.map.ctm_state_fraction =
        map->number_at("ctm_state_fraction", request.options.map.ctm_state_fraction);
    request.options.map.max_ilp_nodes = static_cast<std::size_t>(
        map->number_at("max_ilp_nodes", static_cast<double>(request.options.map.max_ilp_nodes)));
    request.options.map.time_budget_ms =
        map->number_at("time_budget_ms", request.options.map.time_budget_ms);
  }

  if (const Json* predict = root.get("predict"); predict != nullptr) {
    if (!predict->is_object()) {
      return make_error(ErrorCode::kParse, "\"predict\" must be an object");
    }
    static const std::vector<std::string> kPredictKeys = {
        "payload_buckets", "model_emem_cache", "model_queueing", "nic_share",
        "foreign_cache_pressure_bytes"};
    if (auto status = check_keys(predict->as_object(), kPredictKeys, "predict"); !status) {
      return status.error();
    }
    request.options.predict.payload_buckets = static_cast<std::size_t>(predict->number_at(
        "payload_buckets", static_cast<double>(request.options.predict.payload_buckets)));
    request.options.predict.model_emem_cache =
        predict->bool_at("model_emem_cache", request.options.predict.model_emem_cache);
    request.options.predict.model_queueing =
        predict->bool_at("model_queueing", request.options.predict.model_queueing);
    request.options.predict.nic_share =
        predict->number_at("nic_share", request.options.predict.nic_share);
    request.options.predict.foreign_cache_pressure_bytes = predict->number_at(
        "foreign_cache_pressure_bytes", request.options.predict.foreign_cache_pressure_bytes);
  }

  if (const Json* loads = root.get("sweep_pps"); loads != nullptr) {
    if (!loads->is_array()) {
      return make_error(ErrorCode::kParse, "\"sweep_pps\" must be an array of numbers");
    }
    for (const Json& point : loads->as_array()) {
      if (!point.is_number()) {
        return make_error(ErrorCode::kParse, "\"sweep_pps\" must be an array of numbers");
      }
      request.sweep_pps.push_back(point.as_double());
    }
  }
  request.fault_plan = root.string_at("fault_plan");
  request.energy = root.bool_at("energy", false);
  request.breakdown = root.bool_at("breakdown", false);
  request.partial = root.bool_at("partial", false);
  request.paths = root.bool_at("paths", false);
  return request;
}

// --- Response ----------------------------------------------------------------

std::string Response::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\"proto\":";
  out += json_quote(kServeProtocol);
  out += ",\"id\":";
  out += json_quote(id);
  out += ",\"kind\":";
  out += json_quote(to_string(kind));
  out += strf(",\"ok\":%s", bool_word(ok));
  out += ",\"error_code\":";
  out += json_quote(to_string(error_code));
  out += ",\"error\":";
  out += json_quote(error);
  out += ",\"retry_after_ms\":";
  out += json_number(retry_after_ms);
  out += ",\"nf_name\":";
  out += json_quote(nf_name);
  out += ",\"nic\":";
  out += json_quote(nic);
  out += ",\"workload\":";
  out += json_quote(workload);
  out += strf(",\"substituted\":%llu", (unsigned long long)substituted);
  out += strf(",\"patterns\":%llu", (unsigned long long)patterns);
  out += strf(",\"greedy_mapper\":%s", bool_word(greedy_mapper));
  out += strf(",\"degraded\":%s", bool_word(degraded));
  out += strf(",\"repaired\":%s", bool_word(repaired));
  out += strf(",\"repair_displaced\":%llu", (unsigned long long)repair_displaced);
  out += strf(",\"repair_pinned\":%llu", (unsigned long long)repair_pinned);
  out += ",\"mean_latency_cycles\":";
  out += json_number(mean_latency_cycles);
  out += ",\"mean_latency_us\":";
  out += json_number(mean_latency_us);
  out += ",\"worst_case_cycles\":";
  out += json_number(worst_case_cycles);
  out += ",\"throughput_pps\":";
  out += json_number(throughput_pps);
  out += ",\"bottleneck\":";
  out += json_quote(bottleneck);
  out += ",\"emem_cache_hit_rate\":";
  out += json_number(emem_cache_hit_rate);
  out += ",\"flow_cache_hit_rate\":";
  out += json_number(flow_cache_hit_rate);
  out += ",\"classes\":[";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"name\":";
    out += json_quote(classes[i].name);
    out += ",\"fraction\":";
    out += json_number(classes[i].fraction);
    out += ",\"latency_cycles\":";
    out += json_number(classes[i].latency_cycles);
    out += '}';
  }
  out += "],\"report\":";
  out += json_quote(report);
  out += ",\"breakdown_text\":";
  out += json_quote(breakdown_text);
  out += ",\"partial_text\":";
  out += json_quote(partial_text);
  out += ",\"paths_text\":";
  out += json_quote(paths_text);
  out += ",\"energy_nj_per_packet\":";
  out += json_number(energy_nj_per_packet);
  out += ",\"energy_watts\":";
  out += json_number(energy_watts);
  out += ",\"energy_nj_per_packet_total\":";
  out += json_number(energy_nj_per_packet_total);
  out += ",\"sweep\":[";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPointSummary& point = sweep[i];
    if (i != 0) out += ',';
    out += "{\"pps\":";
    out += json_number(point.pps);
    out += strf(",\"seed\":\"%llu\"", (unsigned long long)point.seed);
    out += strf(",\"ok\":%s", bool_word(point.ok));
    out += ",\"error\":";
    out += json_quote(point.error);
    out += ",\"mean_latency_us\":";
    out += json_number(point.mean_latency_us);
    out += ",\"worst_case_cycles\":";
    out += json_number(point.worst_case_cycles);
    out += ",\"bottleneck\":";
    out += json_quote(point.bottleneck);
    out += '}';
  }
  out += "],\"predicted_cycles\":";
  out += json_number(predicted_cycles);
  out += ",\"simulated_cycles\":";
  out += json_number(simulated_cycles);
  out += ",\"rel_err\":";
  out += json_number(rel_err);
  out += ",\"validation_text\":";
  out += json_quote(validation_text);
  out += '}';
  return out;
}

Result<Response> Response::from_json(std::string_view text) {
  if (auto status = check_size(text, "response"); !status) return status.error();
  auto parsed = Json::parse(text);
  if (!parsed) return parsed.error();
  const Json& root = parsed.value();
  if (auto status = check_proto(root, "response"); !status) return status.error();

  static const std::vector<std::string> kTopKeys = {"proto",
                                                    "id",
                                                    "kind",
                                                    "ok",
                                                    "error_code",
                                                    "error",
                                                    "retry_after_ms",
                                                    "nf_name",
                                                    "nic",
                                                    "workload",
                                                    "substituted",
                                                    "patterns",
                                                    "greedy_mapper",
                                                    "degraded",
                                                    "repaired",
                                                    "repair_displaced",
                                                    "repair_pinned",
                                                    "mean_latency_cycles",
                                                    "mean_latency_us",
                                                    "worst_case_cycles",
                                                    "throughput_pps",
                                                    "bottleneck",
                                                    "emem_cache_hit_rate",
                                                    "flow_cache_hit_rate",
                                                    "classes",
                                                    "report",
                                                    "breakdown_text",
                                                    "partial_text",
                                                    "paths_text",
                                                    "energy_nj_per_packet",
                                                    "energy_watts",
                                                    "energy_nj_per_packet_total",
                                                    "sweep",
                                                    "predicted_cycles",
                                                    "simulated_cycles",
                                                    "rel_err",
                                                    "validation_text"};
  if (auto status = check_keys(root.as_object(), kTopKeys, "response"); !status) {
    return status.error();
  }

  Response response;
  response.id = root.string_at("id");
  auto kind = parse_kind(root);
  if (!kind) return kind.error();
  response.kind = kind.value();
  response.ok = root.bool_at("ok", false);
  response.error_code = parse_error_code(root.string_at("error_code"));
  response.error = root.string_at("error");
  response.retry_after_ms = root.number_at("retry_after_ms");
  response.nf_name = root.string_at("nf_name");
  response.nic = root.string_at("nic");
  response.workload = root.string_at("workload");
  response.substituted = static_cast<std::uint64_t>(root.number_at("substituted"));
  response.patterns = static_cast<std::uint64_t>(root.number_at("patterns"));
  response.greedy_mapper = root.bool_at("greedy_mapper", false);
  response.degraded = root.bool_at("degraded", false);
  response.repaired = root.bool_at("repaired", false);
  response.repair_displaced = static_cast<std::uint64_t>(root.number_at("repair_displaced"));
  response.repair_pinned = static_cast<std::uint64_t>(root.number_at("repair_pinned"));
  response.mean_latency_cycles = root.number_at("mean_latency_cycles");
  response.mean_latency_us = root.number_at("mean_latency_us");
  response.worst_case_cycles = root.number_at("worst_case_cycles");
  response.throughput_pps = root.number_at("throughput_pps");
  response.bottleneck = root.string_at("bottleneck");
  response.emem_cache_hit_rate = root.number_at("emem_cache_hit_rate");
  response.flow_cache_hit_rate = root.number_at("flow_cache_hit_rate");

  if (const Json* classes = root.get("classes"); classes != nullptr && classes->is_array()) {
    static const std::vector<std::string> kClassKeys = {"name", "fraction", "latency_cycles"};
    for (const Json& row : classes->as_array()) {
      if (!row.is_object()) {
        return make_error(ErrorCode::kParse, "\"classes\" rows must be objects");
      }
      if (auto status = check_keys(row.as_object(), kClassKeys, "classes"); !status) {
        return status.error();
      }
      ClassSummary cls;
      cls.name = row.string_at("name");
      cls.fraction = row.number_at("fraction");
      cls.latency_cycles = row.number_at("latency_cycles");
      response.classes.push_back(std::move(cls));
    }
  }
  response.report = root.string_at("report");
  response.breakdown_text = root.string_at("breakdown_text");
  response.partial_text = root.string_at("partial_text");
  response.paths_text = root.string_at("paths_text");
  response.energy_nj_per_packet = root.number_at("energy_nj_per_packet");
  response.energy_watts = root.number_at("energy_watts");
  response.energy_nj_per_packet_total = root.number_at("energy_nj_per_packet_total");

  if (const Json* sweep = root.get("sweep"); sweep != nullptr && sweep->is_array()) {
    static const std::vector<std::string> kSweepKeys = {
        "pps", "seed", "ok", "error", "mean_latency_us", "worst_case_cycles", "bottleneck"};
    for (const Json& row : sweep->as_array()) {
      if (!row.is_object()) {
        return make_error(ErrorCode::kParse, "\"sweep\" rows must be objects");
      }
      if (auto status = check_keys(row.as_object(), kSweepKeys, "sweep"); !status) {
        return status.error();
      }
      SweepPointSummary point;
      point.pps = row.number_at("pps");
      point.seed = parse_u64_string(row.string_at("seed", "0"));
      point.ok = row.bool_at("ok", false);
      point.error = row.string_at("error");
      point.mean_latency_us = row.number_at("mean_latency_us");
      point.worst_case_cycles = row.number_at("worst_case_cycles");
      point.bottleneck = row.string_at("bottleneck");
      response.sweep.push_back(std::move(point));
    }
  }
  response.predicted_cycles = root.number_at("predicted_cycles");
  response.simulated_cycles = root.number_at("simulated_cycles");
  response.rel_err = root.number_at("rel_err");
  response.validation_text = root.string_at("validation_text");
  return response;
}

Response error_response(const Request& request, ErrorCode code, std::string message) {
  Response response;
  response.id = request.id;
  response.kind = request.kind;
  response.ok = false;
  response.error_code = code;
  response.error = std::move(message);
  return response;
}

}  // namespace clara::core
