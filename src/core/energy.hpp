// Energy analysis — paper §6 ("Extending Clara for energy analysis
// would require modeling energy consumption [E3, ATC'19]").
//
// Model: each compute-unit kind has an active energy per busy cycle,
// memory accesses cost fixed energy per access by level, the packet
// datapath costs energy per byte moved, and the device burns a static
// idle power. Clara predicts nJ/packet from the same per-pool demand
// and state-access numbers the latency predictor derives; the simulator
// measures it from its exact busy counters, giving the usual
// predicted-vs-actual comparison.
//
// Parameters live in the ParameterStore under "energy.*" keys; the
// built-in profiles carry defaults chosen so the Netronome-like device
// idles ~15 W and peaks ~25 W (the Agilio CX class), with ARM SoCs
// hungrier per cycle but faster.
#pragma once

#include "core/predict.hpp"

namespace clara::core {

namespace energy_keys {
inline constexpr const char* kNpuPerCycle = "energy.npu.nj_per_cycle";       // active nJ per busy cycle
inline constexpr const char* kAccelPerCycle = "energy.accel.nj_per_cycle";   // accelerators
inline constexpr const char* kMemPerAccessCtm = "energy.mem.ctm.nj";         // per access
inline constexpr const char* kMemPerAccessImem = "energy.mem.imem.nj";
inline constexpr const char* kMemPerAccessEmem = "energy.mem.emem.nj";       // DRAM access
inline constexpr const char* kDmaPerByte = "energy.dma.nj_per_byte";
inline constexpr const char* kIdleWatts = "energy.idle.watts";
}  // namespace energy_keys

/// Fills the energy.* keys with defaults appropriate for the profile's
/// class if they are absent (profiles may override).
void ensure_energy_defaults(lnic::ParameterStore& params, const std::string& profile_name);

struct EnergyEstimate {
  /// Dynamic energy attributable to one packet.
  double nj_per_packet = 0.0;
  /// Total device power at the offered rate (idle + dynamic).
  double watts_at_rate = 0.0;
  /// Energy efficiency: nanojoules per packet including the idle share.
  double nj_per_packet_total = 0.0;
};

/// Predicts per-packet energy for an analyzed NF. Uses the same mapping
/// and workload the latency prediction used.
EnergyEstimate predict_energy(const cir::Function& fn, const passes::DataflowGraph& graph,
                              const mapping::Mapping& mapping, const mapping::Mapper& mapper,
                              const workload::Trace& trace);

}  // namespace clara::core
