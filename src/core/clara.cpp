#include "core/clara.hpp"

#include <sstream>

#include "cir/verify.hpp"
#include "common/strings.hpp"
#include "obs/trace.hpp"
#include "passes/dataflow.hpp"

namespace clara::core {

Result<Analysis> Analyzer::analyze(const cir::Function& nf, const workload::Trace& trace,
                                   const AnalyzeOptions& options) const {
  CLARA_TRACE_SCOPE("core/analyze");
  Analysis analysis;
  analysis.lowered = nf;  // operate on a copy; the caller's NF is untouched

  analysis.substitution = passes::substitute_framework_apis(analysis.lowered);
  if (options.fail_on_unknown_calls && !analysis.substitution.unknown_calls.empty()) {
    std::ostringstream os;
    os << "unrecognized calls in '" << nf.name << "':";
    for (const auto& name : analysis.substitution.unknown_calls) os << " " << name;
    return make_error(os.str());
  }

  if (options.pattern_matching) {
    analysis.patterns = passes::collapse_packet_loops(analysis.lowered);
  }

  if (options.optimize_ir) {
    analysis.optimizations = passes::optimize(analysis.lowered);
  }

  {
    CLARA_TRACE_SCOPE("cir/verify");
    if (auto status = cir::verify(analysis.lowered); !status) {
      return make_error("lowered NF failed verification: " + status.error().message);
    }
  }

  const passes::CostHints hints = hints_from_trace(trace, profile_);
  const auto graph = passes::DataflowGraph::build(analysis.lowered, hints);

  mapping::MapOptions map_options = options.map;
  if (map_options.pps == mapping::MapOptions{}.pps && trace.profile.pps > 0.0) {
    map_options.pps = trace.profile.pps;
  }

  const mapping::Mapper mapper(profile_);
  auto mapped = options.use_ilp ? mapper.map(graph, hints, map_options)
                                : mapper.map_greedy(graph, hints, map_options);
  if (!mapped) return mapped.error();
  analysis.mapping = std::move(mapped).value();

  auto prediction = predict(analysis.lowered, graph, analysis.mapping, mapper, trace, options.predict);
  if (!prediction) return prediction.error();
  analysis.prediction = std::move(prediction).value();

  analysis.report = mapping::describe_mapping(analysis.mapping, graph, mapper, analysis.lowered);
  return analysis;
}

namespace {

/// EMEM working-set pressure one NF exerts on its neighbours: active
/// bytes of its EMEM-placed state objects, plus the spilled packet-tail
/// buffer pool when its traffic exceeds the CTM residency.
double emem_pressure(const Analysis& analysis, const workload::Trace& trace, const lnic::NicProfile& profile) {
  double pressure = 0.0;
  const double residency = profile.params.scalar(lnic::keys::kCtmPacketResidency);
  if (residency > 0.0 && trace.mean_payload() + 54.0 > residency) pressure += 1024.0 * 2048.0;
  const std::uint32_t flows = trace.distinct_flows();
  for (std::size_t s = 0; s < analysis.lowered.state_objects.size(); ++s) {
    const NodeId region = analysis.mapping.state_region[s];
    const auto* mem = profile.graph.node(region).memory();
    if (mem == nullptr || mem->kind != lnic::MemKind::kEmem) continue;
    const auto& obj = analysis.lowered.state_objects[s];
    double active = static_cast<double>(obj.total_bytes());
    if (obj.pattern == cir::StatePattern::kHashTable) {
      active = std::min(active, static_cast<double>(flows) * static_cast<double>(obj.entry_bytes));
    }
    pressure += active;
  }
  return pressure;
}

}  // namespace

Result<CoResident> analyze_coresident(const Analyzer& analyzer, const cir::Function& nf_a,
                                      const workload::Trace& trace_a, const cir::Function& nf_b,
                                      const workload::Trace& trace_b, const AnalyzeOptions& options) {
  // Solo pass to obtain mappings and working sets.
  auto solo_a = analyzer.analyze(nf_a, trace_a, options);
  if (!solo_a) return solo_a.error();
  auto solo_b = analyzer.analyze(nf_b, trace_b, options);
  if (!solo_b) return solo_b.error();

  const double pressure_a = emem_pressure(solo_a.value(), trace_a, analyzer.profile());
  const double pressure_b = emem_pressure(solo_b.value(), trace_b, analyzer.profile());

  AnalyzeOptions opts_a = options;
  opts_a.predict.nic_share = 0.5;
  opts_a.predict.foreign_cache_pressure_bytes = pressure_b;
  AnalyzeOptions opts_b = options;
  opts_b.predict.nic_share = 0.5;
  opts_b.predict.foreign_cache_pressure_bytes = pressure_a;

  auto shared_a = analyzer.analyze(nf_a, trace_a, opts_a);
  if (!shared_a) return shared_a.error();
  auto shared_b = analyzer.analyze(nf_b, trace_b, opts_b);
  if (!shared_b) return shared_b.error();

  CoResident out;
  out.first = std::move(shared_a).value();
  out.second = std::move(shared_b).value();
  return out;
}

}  // namespace clara::core
