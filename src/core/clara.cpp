#include "core/clara.hpp"

#include <sstream>

#include "cir/hash.hpp"
#include "cir/verify.hpp"
#include "common/strings.hpp"
#include "core/cache.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "passes/dataflow.hpp"

namespace clara::core {

namespace {

/// Every analysis failure exits through here so the flight recorder's
/// last few thousand events (cache lookups, solver waves, pool activity)
/// land on disk next to the error message. auto_dump throttles itself to
/// once per process.
Error dump_on_failure(Error error) {
  obs::recorder().auto_dump(std::string("analysis_") + to_string(error.code));
  return error;
}

}  // namespace

Analyzer::Analyzer(lnic::NicProfile profile)
    : profile_(std::move(profile)), profile_hash_(hash_profile(profile_)) {}

Result<Analysis> Analyzer::analyze(const cir::Function& nf, const workload::Trace& trace,
                                   const AnalyzeOptions& options) const {
  CLARA_TRACE_SCOPE("core/analyze");
  auto& cache = analysis_cache();
  const bool use_cache = options.use_cache && cache.enabled();

  // Stage 1: lowering (substitution -> patterns -> optimize -> verify).
  // Cached on the *input* function's content plus the stage toggles.
  // Only successful lowerings are cached; the unknown-calls policy is
  // applied after retrieval so a cached entry serves both policies.
  std::uint64_t lkey = 0;
  std::shared_ptr<const LoweredEntry> lowered;
  if (use_cache) {
    lkey = lowered_key(cir::hash_function(nf), options.stages.patterns(), options.stages.optimize());
    lowered = cache.find_lowered(lkey);
  }
  if (!lowered) {
    auto entry = std::make_shared<LoweredEntry>();
    entry->fn = nf;  // operate on a copy; the caller's NF is untouched
    entry->substitution = passes::substitute_framework_apis(entry->fn);
    if (options.stages.patterns()) {
      entry->patterns = passes::collapse_packet_loops(entry->fn);
    }
    if (options.stages.optimize()) {
      entry->optimizations = passes::optimize(entry->fn);
    }
    {
      CLARA_TRACE_SCOPE("cir/verify");
      if (auto status = cir::verify(entry->fn); !status) {
        return dump_on_failure(make_error(
            ErrorCode::kVerify, "lowered NF failed verification: " + status.error().message));
      }
    }
    entry->lowered_hash = cir::hash_function(entry->fn);
    if (use_cache) cache.insert_lowered(lkey, entry);
    lowered = std::move(entry);
  }

  if (options.fail_on_unknown_calls && !lowered->substitution.unknown_calls.empty()) {
    std::ostringstream os;
    os << "unrecognized calls in '" << nf.name << "':";
    for (const auto& name : lowered->substitution.unknown_calls) os << " " << name;
    return dump_on_failure(make_error(ErrorCode::kUnknownCall, os.str()));
  }

  Analysis analysis;
  analysis.lowered = lowered->fn;
  analysis.substitution = lowered->substitution;
  analysis.patterns = lowered->patterns;
  analysis.optimizations = lowered->optimizations;

  // Stage 2: dataflow graph. Keyed on the *lowered* function's hash so
  // holders of a lowered function (the load-sweep driver) can address
  // the same entry without re-running stage 1.
  const passes::CostHints hints = hints_from_trace(trace, profile_);
  std::uint64_t gkey = 0;
  std::shared_ptr<const GraphEntry> graph_entry;
  if (use_cache) {
    gkey = graph_key(lowered->lowered_hash, hash_hints(hints), profile_hash_);
    graph_entry = cache.find_graph(gkey);
  }
  if (!graph_entry) {
    auto entry = std::make_shared<GraphEntry>();
    entry->lowered = lowered;  // keep-alive: the graph points into this fn
    entry->graph = passes::DataflowGraph::build(entry->lowered->fn, hints);
    if (use_cache) cache.insert_graph(gkey, entry);
    graph_entry = std::move(entry);
  }
  const passes::DataflowGraph& graph = graph_entry->graph;

  mapping::MapOptions map_options = options.map;
  if (map_options.pps == mapping::MapOptions{}.pps && trace.profile.pps > 0.0) {
    map_options.pps = trace.profile.pps;
  }

  // Stage 3: the mapping solve — the expensive stage the cache exists
  // for. A hit skips the ILP entirely; a miss within a known model
  // family (same model, different time budget) warm-starts the root
  // relaxation from the family's last recorded basis.
  const mapping::Mapper mapper(profile_);
  std::uint64_t mkey = 0;
  std::uint64_t family = 0;
  std::shared_ptr<const MappingEntry> mapping_entry;
  if (use_cache) {
    mkey = mapping_key(gkey, map_options, options.stages.ilp(), &family);
    mapping_entry = cache.find_mapping(mkey);
  }
  if (!mapping_entry) {
    mapping::MapOptions solve_options = map_options;
    if (use_cache && options.stages.ilp() && solve_options.warm_basis.empty()) {
      solve_options.warm_basis = cache.family_basis(family);
    }
    auto mapped = options.stages.ilp() ? mapper.map(graph, hints, solve_options)
                                       : mapper.map_greedy(graph, hints, solve_options);
    if (!mapped) return dump_on_failure(mapped.error());
    auto entry = std::make_shared<MappingEntry>();
    entry->mapping = std::move(mapped).value();
    if (use_cache) cache.insert_mapping(mkey, family, entry);
    mapping_entry = std::move(entry);
  }
  analysis.mapping = mapping_entry->mapping;
  analysis.degraded = analysis.mapping.degraded;

  auto prediction = predict(analysis.lowered, graph, analysis.mapping, mapper, trace, options.predict);
  if (!prediction) return dump_on_failure(prediction.error());
  analysis.prediction = std::move(prediction).value();

  analysis.report = mapping::describe_mapping(analysis.mapping, graph, mapper, analysis.lowered);
  return analysis;
}

Result<Analysis> Analyzer::repair(const cir::Function& nf, const workload::Trace& trace,
                                  const Analysis& previous, const AnalyzeOptions& options) const {
  CLARA_TRACE_SCOPE("core/repair");
  auto& cache = analysis_cache();
  const bool use_cache = options.use_cache && cache.enabled();

  // Lowering: identical to analyze() — the key depends only on the input
  // NF and the stage toggles, so when the healthy analysis just ran this
  // is a warm hit and no work repeats.
  std::uint64_t lkey = 0;
  std::shared_ptr<const LoweredEntry> lowered;
  if (use_cache) {
    lkey = lowered_key(cir::hash_function(nf), options.stages.patterns(), options.stages.optimize());
    lowered = cache.find_lowered(lkey);
  }
  if (!lowered) {
    auto entry = std::make_shared<LoweredEntry>();
    entry->fn = nf;
    entry->substitution = passes::substitute_framework_apis(entry->fn);
    if (options.stages.patterns()) {
      entry->patterns = passes::collapse_packet_loops(entry->fn);
    }
    if (options.stages.optimize()) {
      entry->optimizations = passes::optimize(entry->fn);
    }
    if (auto status = cir::verify(entry->fn); !status) {
      return dump_on_failure(make_error(
          ErrorCode::kVerify, "lowered NF failed verification: " + status.error().message));
    }
    entry->lowered_hash = cir::hash_function(entry->fn);
    if (use_cache) cache.insert_lowered(lkey, entry);
    lowered = std::move(entry);
  }
  if (options.fail_on_unknown_calls && !lowered->substitution.unknown_calls.empty()) {
    std::ostringstream os;
    os << "unrecognized calls in '" << nf.name << "':";
    for (const auto& name : lowered->substitution.unknown_calls) os << " " << name;
    return dump_on_failure(make_error(ErrorCode::kUnknownCall, os.str()));
  }

  Analysis analysis;
  analysis.lowered = lowered->fn;
  analysis.substitution = lowered->substitution;
  analysis.patterns = lowered->patterns;
  analysis.optimizations = lowered->optimizations;

  // Graph: keyed on the faulted profile's hash (offline/derate state is
  // mixed into hash_profile), so a degraded profile never aliases the
  // healthy profile's entry.
  const passes::CostHints hints = hints_from_trace(trace, profile_);
  std::uint64_t gkey = 0;
  std::shared_ptr<const GraphEntry> graph_entry;
  if (use_cache) {
    gkey = graph_key(lowered->lowered_hash, hash_hints(hints), profile_hash_);
    graph_entry = cache.find_graph(gkey);
  }
  if (!graph_entry) {
    auto entry = std::make_shared<GraphEntry>();
    entry->lowered = lowered;
    entry->graph = passes::DataflowGraph::build(entry->lowered->fn, hints);
    if (use_cache) cache.insert_graph(gkey, entry);
    graph_entry = std::move(entry);
  }
  const passes::DataflowGraph& graph = graph_entry->graph;

  mapping::MapOptions map_options = options.map;
  if (map_options.pps == mapping::MapOptions{}.pps && trace.profile.pps > 0.0) {
    map_options.pps = trace.profile.pps;
  }

  // Incremental repair instead of a cold solve. The reduced model still
  // warm-starts from the model family's recorded basis when one exists.
  // The result is deliberately NOT inserted into the mapping cache.
  const mapping::Mapper mapper(profile_);
  mapping::MapOptions solve_options = map_options;
  if (use_cache && options.stages.ilp() && solve_options.warm_basis.empty()) {
    std::uint64_t family = 0;
    (void)mapping_key(gkey, map_options, options.stages.ilp(), &family);
    solve_options.warm_basis = cache.family_basis(family);
  }
  auto repaired = options.stages.ilp() ? mapper.repair(graph, hints, previous.mapping, solve_options)
                                       : mapper.map_greedy(graph, hints, solve_options);
  if (!repaired) return dump_on_failure(repaired.error());
  analysis.mapping = std::move(repaired).value();
  if (!options.stages.ilp()) analysis.mapping.repaired = true;  // greedy re-solve is still a repair
  analysis.degraded = analysis.mapping.degraded;
  analysis.repaired = analysis.mapping.repaired;

  auto prediction = predict(analysis.lowered, graph, analysis.mapping, mapper, trace, options.predict);
  if (!prediction) return dump_on_failure(prediction.error());
  analysis.prediction = std::move(prediction).value();

  analysis.report = mapping::describe_mapping(analysis.mapping, graph, mapper, analysis.lowered);
  return analysis;
}

namespace {

/// EMEM working-set pressure one NF exerts on its neighbours: active
/// bytes of its EMEM-placed state objects, plus the spilled packet-tail
/// buffer pool when its traffic exceeds the CTM residency.
double emem_pressure(const Analysis& analysis, const workload::Trace& trace, const lnic::NicProfile& profile) {
  double pressure = 0.0;
  const double residency = profile.params.scalar(lnic::keys::kCtmPacketResidency);
  if (residency > 0.0 && trace.mean_payload() + 54.0 > residency) pressure += 1024.0 * 2048.0;
  const std::uint32_t flows = trace.distinct_flows();
  for (std::size_t s = 0; s < analysis.lowered.state_objects.size(); ++s) {
    const NodeId region = analysis.mapping.state_region[s];
    const auto* mem = profile.graph.node(region).memory();
    if (mem == nullptr || mem->kind != lnic::MemKind::kEmem) continue;
    const auto& obj = analysis.lowered.state_objects[s];
    double active = static_cast<double>(obj.total_bytes());
    if (obj.pattern == cir::StatePattern::kHashTable) {
      active = std::min(active, static_cast<double>(flows) * static_cast<double>(obj.entry_bytes));
    }
    pressure += active;
  }
  return pressure;
}

}  // namespace

Result<CoResident> Analyzer::coresident(const cir::Function& nf_a, const workload::Trace& trace_a,
                                        const cir::Function& nf_b, const workload::Trace& trace_b,
                                        const AnalyzeOptions& options) const {
  // Solo pass to obtain mappings and working sets. The shared pass below
  // re-analyzes under interference options that only perturb prediction,
  // so its lowering/graph/mapping stages all hit the cache warm.
  auto solo_a = analyze(nf_a, trace_a, options);
  if (!solo_a) return solo_a.error();
  auto solo_b = analyze(nf_b, trace_b, options);
  if (!solo_b) return solo_b.error();

  const double pressure_a = emem_pressure(solo_a.value(), trace_a, profile_);
  const double pressure_b = emem_pressure(solo_b.value(), trace_b, profile_);

  AnalyzeOptions opts_a = options;
  opts_a.predict.nic_share = 0.5;
  opts_a.predict.foreign_cache_pressure_bytes = pressure_b;
  AnalyzeOptions opts_b = options;
  opts_b.predict.nic_share = 0.5;
  opts_b.predict.foreign_cache_pressure_bytes = pressure_a;

  auto shared_a = analyze(nf_a, trace_a, opts_a);
  if (!shared_a) return shared_a.error();
  auto shared_b = analyze(nf_b, trace_b, opts_b);
  if (!shared_b) return shared_b.error();

  CoResident out;
  out.first = std::move(shared_a).value();
  out.second = std::move(shared_b).value();
  return out;
}

}  // namespace clara::core
