// The serializable analysis API — one Request/Response pair shared by
// every front end (docs/api.md "Wire protocol").
//
// `clara analyze ...`, `clarad` (the analysis daemon) and the serve
// load generator all speak these two value types: the CLI builds a
// Request from its flags and renders the Response; the daemon reads one
// JSON line per request off a Unix socket and writes one JSON line per
// response. Serialization is deliberately boring — every field is
// always emitted, in a fixed order, with deterministic number
// formatting (common/json json_number) — so serialize→parse→serialize
// is byte-identical and two identical analyses produce two identical
// response lines at any --jobs level. Responses carry no timing or
// cache-visibility fields for the same reason.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/clara.hpp"

namespace clara::core {

/// Protocol identifier carried as the first field of every request and
/// response line. Bump the suffix on any incompatible schema change;
/// a server rejects lines whose proto it does not speak (kParse).
inline constexpr const char* kServeProtocol = "clara-serve/1";

/// Hard cap on a single wire line accepted by from_json (requests and
/// responses alike). Oversized input is a kParse error before the JSON
/// parser ever touches it, so hostile peers cannot make the server
/// chew on multi-megabyte documents.
inline constexpr std::size_t kMaxWireBytes = 8u << 20;  // 8 MiB

enum class RequestKind : std::uint8_t {
  kAnalyze,   // full pipeline, one prediction
  kSweep,     // analyze + predictor load-sensitivity sweep over sweep_pps
  kRepair,    // analyze healthy, apply fault_plan unit faults, repair
  kValidate,  // analyze + predicted-vs-simulated error attribution
  kHello,     // server greeting line (responses only)
};

constexpr const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kAnalyze: return "analyze";
    case RequestKind::kSweep: return "sweep";
    case RequestKind::kRepair: return "repair";
    case RequestKind::kValidate: return "validate";
    case RequestKind::kHello: return "hello";
  }
  return "?";
}

/// One analysis request. The NF comes either from the built-in corpus
/// (`nf`, a serve::nf_registry name) or inline as CIR text (`nf_cir`);
/// the workload either from a profile spec (`workload`) or a .cltr file
/// path readable by the server (`trace_file`).
struct Request {
  /// Client-chosen correlation tag, echoed verbatim on the response.
  std::string id;
  RequestKind kind = RequestKind::kAnalyze;
  std::string nf;
  std::string nf_cir;
  std::string nic = "netronome-agilio-cx";
  std::string workload;
  std::string trace_file;
  /// Pipeline configuration. map.time_budget_ms doubles as the
  /// per-request deadline: on expiry the response is degraded=true, not
  /// an error. map.warm_basis and map.ilp_algorithm are process-local
  /// tuning and do not serialize.
  AnalyzeOptions options;
  /// kSweep: offered-load grid for predict_load_sweep.
  std::vector<double> sweep_pps;
  /// kRepair: textual fault::FaultPlan (unit faults only — armed
  /// injection sites are process-global and rejected by the server).
  std::string fault_plan;
  /// Optional response sections (energy model, latency attribution,
  /// partial-offload planning, symbolic path enumeration).
  bool energy = false;
  bool breakdown = false;
  bool partial = false;
  bool paths = false;

  /// One JSON line (no trailing newline), fixed field order.
  [[nodiscard]] std::string to_json() const;
  /// Strict parse: unknown fields are a kParse error with a
  /// did-you-mean suggestion; a missing/foreign proto is rejected.
  static Result<Request> from_json(std::string_view text);
};

/// One point of a kSweep response.
struct SweepPointSummary {
  double pps = 0.0;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;
  double mean_latency_us = 0.0;
  double worst_case_cycles = 0.0;
  std::string bottleneck;
};

/// One per-packet-class row of the prediction (ClassProfile, minus the
/// flags the CLI never printed).
struct ClassSummary {
  std::string name;
  double fraction = 0.0;
  double latency_cycles = 0.0;
};

/// The response to any Request. `ok` gates the payload: on failure only
/// id/kind/error_code/error are meaningful. All payload fields are
/// deterministic functions of the request (plus the server's NF corpus
/// and profiles), never of timing, scheduling, or cache state.
struct Response {
  std::string id;
  RequestKind kind = RequestKind::kAnalyze;
  bool ok = false;
  ErrorCode error_code = ErrorCode::kUnspecified;
  std::string error;
  /// Server backoff hint, meaningful on kOverloaded rejections (admission
  /// gate, connection limit, draining): how long a well-behaved client
  /// should wait before retrying. 0 = no hint.
  double retry_after_ms = 0.0;

  // -- Analysis summary (analyze/sweep/repair/validate) --------------------
  std::string nf_name;    // function analyzed
  std::string nic;        // profile it was mapped onto
  std::string workload;   // effective profile spec, seed included
  std::uint64_t substituted = 0;  // framework calls replaced
  std::uint64_t patterns = 0;     // idiom loops collapsed
  bool greedy_mapper = false;
  bool degraded = false;   // solver deadline expired; best-effort mapping
  bool repaired = false;   // mapping came from incremental repair
  std::uint64_t repair_displaced = 0;
  std::uint64_t repair_pinned = 0;
  double mean_latency_cycles = 0.0;
  double mean_latency_us = 0.0;
  double worst_case_cycles = 0.0;
  double throughput_pps = 0.0;
  std::string bottleneck;
  double emem_cache_hit_rate = 0.0;
  double flow_cache_hit_rate = 0.0;
  std::vector<ClassSummary> classes;
  std::string report;
  /// Rendered attribution table when the request asked breakdown=true.
  std::string breakdown_text;
  /// Rendered partial-offload plans when the request asked partial=true
  /// (empty when no plan improves on the full offload).
  std::string partial_text;
  /// Rendered symbolic path enumeration when the request asked paths=true.
  std::string paths_text;
  /// Energy model outputs when the request asked energy=true.
  double energy_nj_per_packet = 0.0;
  double energy_watts = 0.0;
  double energy_nj_per_packet_total = 0.0;

  // -- kSweep ---------------------------------------------------------------
  std::vector<SweepPointSummary> sweep;

  // -- kValidate ------------------------------------------------------------
  double predicted_cycles = 0.0;
  double simulated_cycles = 0.0;
  double rel_err = 0.0;
  /// Rendered per-component error table (obs::render_validation).
  std::string validation_text;

  [[nodiscard]] std::string to_json() const;
  static Result<Response> from_json(std::string_view text);
};

/// An ok=false Response for `request` with the given typed error.
Response error_response(const Request& request, ErrorCode code, std::string message);

}  // namespace clara::core
