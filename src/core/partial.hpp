// Partial offloading — paper §6: "another useful task is to understand
// the performance of partial offloading, where the NF is partitioned
// into two components — one resident in the SmartNIC and another in
// server CPUs. Capturing partial offloading performance requires
// reasoning about the host/NIC interconnect (e.g., PCIe)."
//
// Model: the dataflow graph is cut at a topological prefix — nodes
// before the cut run on the NIC (using the ILP mapping), nodes after it
// run on a host core (priced by a simple x86 cost model). A packet that
// crosses the cut pays one PCIe traversal (round-trip latency plus
// per-byte transfer for the frame). State objects live with the side
// that touches them most; accesses from the other side pay a PCIe round
// trip each (there is no cache coherence over PCIe — the paper's point).
//
// Cuts that would split a loop between the sides are rejected.
#pragma once

#include <string>
#include <vector>

#include "core/predict.hpp"

namespace clara::core {

/// Host-side execution model (a big out-of-order core, everything warm
/// in cache) and the interconnect.
struct HostModel {
  double clock_hz = 3.4e9;
  double cycles_per_instr = 0.4;   // sustained IPC ~2.5
  double state_access_cycles = 14; // L2-resident NF state
  double packet_access_cycles = 8;
  double csum_base = 80, csum_per_byte = 0.12;
  double crypto_per_byte = 2.5;    // AES-NI
  double lpm_cycles = 120;         // DXR/radix in cache
  double table_lookup_cycles = 90;
  double table_update_cycles = 120;
  double scan_per_byte = 1.2;
  double meter_cycles = 60, stats_cycles = 50;
  double parse_cycles = 45;
  /// PCIe round trip and effective per-byte cost (posted writes).
  double pcie_rtt_us = 0.9;
  double pcie_us_per_byte = 0.0008;
  /// Relative cost of a host-core microsecond vs a NIC microsecond when
  /// choosing the best plan. 1.0 compares pure end-to-end latency;
  /// larger values encode the paper's economic motivation ("consumed
  /// resources are no longer available to revenue-generating tenant
  /// VMs") — host cycles are the scarce resource offloading frees.
  double host_core_weight = 1.0;
};

struct PartialPlan {
  /// Dataflow nodes [0, cut) run on the NIC, [cut, n) on the host.
  std::size_t cut = 0;
  double nic_us = 0.0;
  double host_us = 0.0;
  double pcie_us = 0.0;
  /// Fraction of packets that actually cross to the host (NIC-side
  /// drops/filters reduce it — the classic partial-offload win).
  double crossing_fraction = 1.0;
  [[nodiscard]] double total_us() const { return nic_us + host_us + pcie_us; }
  /// Plan score under the host-core weight (what `best` minimizes).
  double weighted_cost = 0.0;
  /// Human-readable boundary ("... | translate[0:5] ...").
  std::string boundary;
};

struct PartialResult {
  /// One plan per valid cut, in cut order. Always includes cut = 0
  /// (everything on the host) and cut = n (full offload).
  std::vector<PartialPlan> plans;
  std::size_t best = 0;  // index into plans

  [[nodiscard]] const PartialPlan& best_plan() const { return plans[best]; }
};

/// Evaluates every valid prefix cut of the mapped NF. `graph` and
/// `mapping` must come from the same Analyzer run (the NIC-side costs
/// reuse the ILP's unit bindings).
Result<PartialResult> plan_partial_offload(const cir::Function& fn, const passes::DataflowGraph& graph,
                                           const mapping::Mapping& mapping, const mapping::Mapper& mapper,
                                           const workload::Trace& trace, const HostModel& host = {});

/// Renders the plan table.
std::string describe_partial(const PartialResult& result, const passes::DataflowGraph& graph);

}  // namespace clara::core
