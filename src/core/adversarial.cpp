#include "core/adversarial.hpp"

namespace clara::core {

namespace {

Result<double> evaluate(const Analyzer& analyzer, const cir::Function& nf,
                        const workload::WorkloadProfile& profile) {
  const auto trace = workload::generate_trace(profile);
  auto analysis = analyzer.analyze(nf, trace);
  if (!analysis) return analysis.error();
  return analysis.value().prediction.mean_latency_cycles;
}

}  // namespace

Result<AdversarialResult> find_adversarial_workload(const Analyzer& analyzer, const cir::Function& nf,
                                                    const workload::WorkloadProfile& seed,
                                                    const AdversarialOptions& options) {
  AdversarialResult result;
  workload::WorkloadProfile current = seed;
  current.packets = options.packets;

  auto seed_latency = evaluate(analyzer, nf, current);
  if (!seed_latency) return seed_latency.error();
  result.seed_latency_cycles = seed_latency.value();
  double best = seed_latency.value();
  result.evaluations = 1;

  // Coordinate ascent to a fixed point (or the evaluation budget).
  bool improved = true;
  while (improved && result.evaluations < options.max_evaluations) {
    improved = false;

    auto try_candidate = [&](workload::WorkloadProfile candidate) {
      if (result.evaluations >= options.max_evaluations) return;
      candidate.packets = options.packets;
      const auto latency = evaluate(analyzer, nf, candidate);
      ++result.evaluations;
      if (!latency) return;  // infeasible corner (e.g. Θ): skip, keep searching
      if (latency.value() > best * (1.0 + 1e-9)) {
        best = latency.value();
        current = candidate;
        improved = true;
        result.trajectory.push_back({candidate.serialize(), best});
      }
    };

    for (const auto payload : options.payloads) {
      auto candidate = current;
      candidate.payload_min = candidate.payload_max = payload;
      try_candidate(candidate);
    }
    for (const auto flows : options.flow_counts) {
      auto candidate = current;
      candidate.flows = flows;
      try_candidate(candidate);
    }
    for (const auto alpha : options.zipf_alphas) {
      auto candidate = current;
      candidate.zipf_alpha = alpha;
      try_candidate(candidate);
    }
    for (const auto tcp : options.tcp_fractions) {
      auto candidate = current;
      candidate.tcp_fraction = tcp;
      try_candidate(candidate);
    }
  }

  result.worst = current;
  result.worst_latency_cycles = best;
  return result;
}

}  // namespace clara::core
