// Deterministic content hash of a CIR function.
//
// The digest covers everything that affects lowering, the DFG, and the
// mapping model: instruction streams, block structure and trip counts,
// state-object shapes, and register counts. Two functions with equal
// hashes are (up to 64-bit collision) behaviourally identical inputs to
// the pipeline, which is what lets the analysis cache key on content
// instead of identity.
#pragma once

#include <cstdint>

#include "cir/function.hpp"

namespace clara::cir {

/// Stable across runs: mixes only logical content (names, opcodes,
/// operand values, indices), never pointers.
std::uint64_t hash_function(const Function& fn);

}  // namespace clara::cir
