#include <cassert>
#include <map>
#include <optional>
#include <vector>

#include "cir/printer.hpp"
#include "common/strings.hpp"

namespace clara::cir {

namespace {

// Input hardening bounds (docs/robustness.md): degenerate or hostile
// inputs are rejected up front with typed kParse errors instead of being
// allowed to exhaust memory or wander the tokenizer. The limits are far
// above anything a legitimate NF produces (the largest builtin prints at
// a few KiB) but small enough that a fuzzer cannot make the parser the
// allocation bottleneck.
constexpr std::size_t kMaxInputBytes = 8u << 20;  // 8 MiB of CIR text
constexpr std::size_t kMaxLines = 1u << 18;
constexpr std::size_t kMaxLineBytes = 4096;       // bounds every token too
constexpr int kMaxOperandNesting = 32;            // '[' / '(' depth

struct Cursor {
  std::vector<std::string> lines;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= lines.size(); }
  [[nodiscard]] std::string_view peek() const { return trim(lines[pos]); }
  std::string_view next() { return trim(lines[pos++]); }
  [[nodiscard]] std::size_t line_no() const { return pos; }  // 1-based after next()
};

using ParseError = Error;

std::optional<Type> parse_type(std::string_view s) {
  if (s == "void") return Type::kVoid;
  if (s == "i8") return Type::kI8;
  if (s == "i16") return Type::kI16;
  if (s == "i32") return Type::kI32;
  if (s == "i64") return Type::kI64;
  if (s == "ptr") return Type::kPtr;
  return std::nullopt;
}

std::optional<Opcode> parse_opcode(std::string_view s) {
  static const std::map<std::string_view, Opcode> kOps = {
      {"add", Opcode::kAdd}, {"sub", Opcode::kSub}, {"mul", Opcode::kMul}, {"div", Opcode::kDiv},
      {"rem", Opcode::kRem}, {"and", Opcode::kAnd}, {"or", Opcode::kOr},   {"xor", Opcode::kXor},
      {"shl", Opcode::kShl}, {"shr", Opcode::kShr}, {"eq", Opcode::kEq},   {"ne", Opcode::kNe},
      {"lt", Opcode::kLt},   {"le", Opcode::kLe},   {"gt", Opcode::kGt},   {"ge", Opcode::kGe},
      {"select", Opcode::kSelect}, {"fadd", Opcode::kFAdd}, {"fmul", Opcode::kFMul},
  };
  const auto it = kOps.find(s);
  if (it == kOps.end()) return std::nullopt;
  return it->second;
}

std::optional<Value> parse_operand(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  if (s.front() == '%') {
    const auto n = parse_int(s.substr(1));
    if (!n || *n < 0) return std::nullopt;
    return Value::of_reg(static_cast<std::uint32_t>(*n));
  }
  const auto n = parse_int(s);
  if (!n) return std::nullopt;
  return Value::of_imm(*n);
}

/// Splits top-level comma-separated operands (no nesting in our grammar
/// except phi brackets, handled separately). Returns nullopt when the
/// brackets are unbalanced or nest past kMaxOperandNesting — hostile
/// input, never produced by the printer.
std::optional<std::vector<std::string>> split_operands(std::string_view s) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || (s[i] == ',' && depth == 0)) {
      const auto piece = trim(s.substr(start, i - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    } else if (s[i] == '[' || s[i] == '(') {
      if (++depth > kMaxOperandNesting) return std::nullopt;
    } else if (s[i] == ']' || s[i] == ')') {
      if (--depth < 0) return std::nullopt;
    }
  }
  if (depth != 0) return std::nullopt;
  return out;
}

std::optional<SymExpr> parse_trip(std::string_view s) {
  // "SCALE*PARAM+BIAS" or a bare constant.
  const auto star = s.find('*');
  if (star == std::string_view::npos) {
    const auto c = parse_double(s);
    if (!c) return std::nullopt;
    return SymExpr::constant(*c);
  }
  const auto scale = parse_double(trim(s.substr(0, star)));
  if (!scale) return std::nullopt;
  auto rest = s.substr(star + 1);
  const auto plus = rest.rfind('+');
  if (plus == std::string_view::npos) return std::nullopt;
  const std::string param{trim(rest.substr(0, plus))};
  const auto bias = parse_double(trim(rest.substr(plus + 1)));
  if (!bias || param.empty()) return std::nullopt;
  return SymExpr::of_param(param, *scale, *bias);
}

struct PendingBranch {
  std::uint32_t block;
  std::size_t instr;
  std::string label0, label1;
};

struct PendingPhi {
  std::uint32_t block;
  std::size_t instr;
  std::vector<std::string> labels;
};

class FunctionParser {
 public:
  explicit FunctionParser(Cursor& cur) : cur_(cur) {}

  Result<Function> parse(std::string_view header) {
    // header: "func NAME {"
    auto rest = trim(header.substr(4));
    if (rest.empty() || rest.back() != '{') return err("expected 'func NAME {'");
    rest = trim(rest.substr(0, rest.size() - 1));
    if (rest.empty()) return err("function needs a name");
    fn_.name = std::string(rest);

    while (!cur_.done()) {
      const auto line = cur_.next();
      if (line.empty() || line.front() == ';' || line.front() == '#') continue;
      if (line == "}") return finish();
      if (starts_with(line, "state ")) {
        if (auto s = parse_state(line); !s) return s.error();
      } else if (starts_with(line, "block ")) {
        if (auto s = parse_block_header(line); !s) return s.error();
      } else {
        if (cur_block_ == ~0u) return err("instruction outside of a block");
        if (auto s = parse_instr(line); !s) return s.error();
      }
    }
    return err("unexpected end of input in function body");
  }

 private:
  ParseError err(const std::string& msg) {
    return make_error(ErrorCode::kParse, strf("line %zu: %s", cur_.line_no(), msg.c_str()));
  }

  Status parse_state(std::string_view line) {
    StateObject state;
    bool have_entries = false, have_bytes = false;
    std::string_view rest = trim(line.substr(6));
    for (const auto& tokenstr : split(rest, ' ')) {
      const auto token = trim(tokenstr);
      if (token.empty()) continue;
      const auto eq = token.find('=');
      if (eq == std::string_view::npos) {
        if (!state.name.empty()) return err("state: unexpected token");
        state.name = std::string(token);
        continue;
      }
      const auto key = token.substr(0, eq);
      const auto value = token.substr(eq + 1);
      if (key == "entries") {
        const auto v = parse_int(value);
        if (!v || *v < 0) return err("state: bad entries");
        state.entries = static_cast<std::uint64_t>(*v);
        have_entries = true;
      } else if (key == "entry_bytes") {
        const auto v = parse_int(value);
        if (!v || *v < 0) return err("state: bad entry_bytes");
        state.entry_bytes = static_cast<Bytes>(*v);
        have_bytes = true;
      } else if (key == "pattern") {
        if (value == "hash") {
          state.pattern = StatePattern::kHashTable;
        } else if (value == "array") {
          state.pattern = StatePattern::kArray;
        } else if (value == "direct") {
          state.pattern = StatePattern::kDirect;
        } else {
          return err("state: unknown pattern");
        }
      } else {
        return err("state: unknown attribute");
      }
    }
    if (state.name.empty() || !have_entries || !have_bytes) return err("state: needs name, entries, entry_bytes");
    fn_.state_objects.push_back(std::move(state));
    return {};
  }

  Status parse_block_header(std::string_view line) {
    auto rest = trim(line.substr(6));
    if (rest.empty() || rest.back() != ':') return err("block header must end with ':'");
    rest = trim(rest.substr(0, rest.size() - 1));
    BasicBlock block;
    const auto bracket = rest.find('[');
    if (bracket != std::string_view::npos) {
      auto attr = trim(rest.substr(bracket));
      block.label = std::string(trim(rest.substr(0, bracket)));
      if (attr.size() < 2 || attr.back() != ']') return err("unterminated block attribute");
      attr = attr.substr(1, attr.size() - 2);
      if (!starts_with(attr, "trip=")) return err("unknown block attribute");
      const auto trip = parse_trip(trim(attr.substr(5)));
      if (!trip) return err("bad trip expression");
      block.trip = *trip;
      block.has_trip = true;
    } else {
      block.label = std::string(rest);
    }
    if (block.label.empty()) return err("block needs a label");
    if (labels_.count(block.label)) return err("duplicate block label");
    labels_[block.label] = static_cast<std::uint32_t>(fn_.blocks.size());
    fn_.blocks.push_back(std::move(block));
    cur_block_ = static_cast<std::uint32_t>(fn_.blocks.size() - 1);
    return {};
  }

  Status parse_instr(std::string_view line) {
    Instr instr;
    // Optional "%N = " destination.
    auto body = line;
    if (body.front() == '%') {
      const auto eq = body.find('=');
      if (eq == std::string_view::npos) return err("expected '=' after destination register");
      const auto dst = parse_operand(trim(body.substr(0, eq)));
      if (!dst || !dst->is_reg()) return err("bad destination register");
      instr.dst = dst->reg;
      track_reg(instr.dst);
      body = trim(body.substr(eq + 1));
    }

    // Opcode token (up to first space), with optional ".type".
    const auto space_pos = body.find(' ');
    auto opcode_tok = space_pos == std::string_view::npos ? body : body.substr(0, space_pos);
    auto rest = space_pos == std::string_view::npos ? std::string_view{} : trim(body.substr(space_pos + 1));
    const auto dot = opcode_tok.find('.');
    std::string_view type_tok;
    if (dot != std::string_view::npos) {
      type_tok = opcode_tok.substr(dot + 1);
      opcode_tok = opcode_tok.substr(0, dot);
    }
    if (!type_tok.empty()) {
      const auto t = parse_type(type_tok);
      if (!t) return err("unknown type suffix");
      instr.type = *t;
    }

    if (opcode_tok == "br") {
      instr.op = Opcode::kBr;
      instr.type = Type::kVoid;
      pending_branches_.push_back({cur_block_, fn_.blocks[cur_block_].instrs.size(), std::string(rest), {}});
    } else if (opcode_tok == "condbr") {
      instr.op = Opcode::kCondBr;
      instr.type = Type::kVoid;
      const auto ops = split_operands(rest);
      if (!ops || ops->size() != 3) return err("condbr needs cond, then, else");
      const auto cond = parse_operand((*ops)[0]);
      if (!cond) return err("bad condbr condition");
      instr.args = {*cond};
      track_value(*cond);
      pending_branches_.push_back(
          {cur_block_, fn_.blocks[cur_block_].instrs.size(), (*ops)[1], (*ops)[2]});
    } else if (opcode_tok == "ret") {
      instr.op = Opcode::kRet;
      instr.type = Type::kVoid;
    } else if (opcode_tok == "load" || opcode_tok == "store") {
      instr.op = opcode_tok == "load" ? Opcode::kLoad : Opcode::kStore;
      if (auto s = parse_mem(instr, rest); !s) return s;
    } else if (opcode_tok == "call") {
      instr.op = Opcode::kCall;
      const auto paren = rest.find('(');
      if (paren == std::string_view::npos || rest.back() != ')') return err("call needs 'name(args)'");
      instr.callee = std::string(trim(rest.substr(0, paren)));
      if (instr.callee.empty()) return err("call needs a callee");
      const auto ops = split_operands(rest.substr(paren + 1, rest.size() - paren - 2));
      if (!ops) return err("call arguments unbalanced or nested too deep");
      for (const auto& op_text : *ops) {
        const auto v = parse_operand(op_text);
        if (!v) return err("bad call operand");
        instr.args.push_back(*v);
        track_value(*v);
      }
    } else if (opcode_tok == "phi") {
      instr.op = Opcode::kPhi;
      PendingPhi pending{cur_block_, fn_.blocks[cur_block_].instrs.size(), {}};
      const auto pieces = split_operands(rest);
      if (!pieces) return err("phi operands unbalanced or nested too deep");
      for (const auto& piece : *pieces) {
        if (piece.size() < 2 || piece.front() != '[' || piece.back() != ']') return err("phi operand needs [v, block]");
        const auto inner = split_operands(std::string_view(piece).substr(1, piece.size() - 2));
        if (!inner || inner->size() != 2) return err("phi operand needs [v, block]");
        const auto v = parse_operand((*inner)[0]);
        if (!v) return err("bad phi value");
        instr.args.push_back(*v);
        track_value(*v);
        instr.phi_preds.push_back(~0u);
        pending.labels.push_back((*inner)[1]);
      }
      pending_phis_.push_back(std::move(pending));
    } else {
      const auto op = parse_opcode(opcode_tok);
      if (!op) return err(strf("unknown opcode '%.*s'", (int)opcode_tok.size(), opcode_tok.data()));
      instr.op = *op;
      const auto ops = split_operands(rest);
      if (!ops) return err("operands unbalanced or nested too deep");
      for (const auto& op_text : *ops) {
        const auto v = parse_operand(op_text);
        if (!v) return err("bad operand");
        instr.args.push_back(*v);
        track_value(*v);
      }
    }

    fn_.blocks[cur_block_].instrs.push_back(std::move(instr));
    return {};
  }

  Status parse_mem(Instr& instr, std::string_view rest) {
    // "state(NAME)[idx]" / "packet[idx]" / "scratch[idx]" / "header[idx]",
    // stores followed by ", value".
    const auto open = rest.find('[');
    if (open == std::string_view::npos) return err("memory op needs '[index]'");
    const auto close = rest.find(']', open);
    if (close == std::string_view::npos) return err("unterminated '['");
    auto target = trim(rest.substr(0, open));
    if (starts_with(target, "state(")) {
      if (target.back() != ')') return err("unterminated state(...)");
      const auto name = trim(target.substr(6, target.size() - 7));
      instr.space = MemSpace::kState;
      instr.state = ~0u;
      for (std::uint32_t i = 0; i < fn_.state_objects.size(); ++i) {
        if (fn_.state_objects[i].name == name) instr.state = i;
      }
      if (instr.state == ~0u) return err("unknown state object");
    } else if (target == "packet") {
      instr.space = MemSpace::kPacket;
    } else if (target == "scratch") {
      instr.space = MemSpace::kScratch;
    } else if (target == "header") {
      instr.space = MemSpace::kHeader;
    } else {
      return err("unknown memory space");
    }
    const auto idx = parse_operand(rest.substr(open + 1, close - open - 1));
    if (!idx) return err("bad memory index");
    instr.args.push_back(*idx);
    track_value(*idx);
    if (instr.op == Opcode::kStore) {
      auto tail = trim(rest.substr(close + 1));
      if (tail.empty() || tail.front() != ',') return err("store needs ', value'");
      const auto v = parse_operand(tail.substr(1));
      if (!v) return err("bad store value");
      instr.args.push_back(*v);
      track_value(*v);
    }
    return {};
  }

  Result<Function> finish() {
    for (const auto& pb : pending_branches_) {
      Instr& instr = fn_.blocks[pb.block].instrs[pb.instr];
      const auto it0 = labels_.find(pb.label0);
      if (it0 == labels_.end()) {
        return make_error(ErrorCode::kParse, "unknown branch target '" + pb.label0 + "'");
      }
      instr.target0 = it0->second;
      if (instr.op == Opcode::kCondBr) {
        const auto it1 = labels_.find(pb.label1);
        if (it1 == labels_.end()) {
          return make_error(ErrorCode::kParse, "unknown branch target '" + pb.label1 + "'");
        }
        instr.target1 = it1->second;
      }
    }
    for (const auto& pp : pending_phis_) {
      Instr& instr = fn_.blocks[pp.block].instrs[pp.instr];
      for (std::size_t i = 0; i < pp.labels.size(); ++i) {
        const auto it = labels_.find(pp.labels[i]);
        if (it == labels_.end()) {
          return make_error(ErrorCode::kParse, "unknown phi predecessor '" + pp.labels[i] + "'");
        }
        instr.phi_preds[i] = it->second;
      }
    }
    fn_.num_regs = max_reg_ == ~0u ? 0 : max_reg_ + 1;
    return std::move(fn_);
  }

  void track_reg(std::uint32_t reg) {
    if (max_reg_ == ~0u || reg > max_reg_) max_reg_ = reg;
  }
  void track_value(const Value& v) {
    if (v.is_reg()) track_reg(v.reg);
  }

  Cursor& cur_;
  Function fn_;
  std::uint32_t cur_block_ = ~0u;
  std::uint32_t max_reg_ = ~0u;
  std::map<std::string, std::uint32_t, std::less<>> labels_;
  std::vector<PendingBranch> pending_branches_;
  std::vector<PendingPhi> pending_phis_;
};

}  // namespace

Result<Module> parse_module(const std::string& text) {
  // Hardening pre-pass: size, line-count, and line-length caps, checked
  // before any allocation proportional to the content.
  if (text.size() > kMaxInputBytes) {
    return make_error(ErrorCode::kParse, strf("input too large: %zu bytes (max %zu)", text.size(),
                                              kMaxInputBytes));
  }
  Cursor cur;
  cur.lines = split(text, '\n');
  if (cur.lines.size() > kMaxLines) {
    return make_error(ErrorCode::kParse,
                      strf("too many lines: %zu (max %zu)", cur.lines.size(), kMaxLines));
  }
  for (std::size_t i = 0; i < cur.lines.size(); ++i) {
    if (cur.lines[i].size() > kMaxLineBytes) {
      return make_error(ErrorCode::kParse, strf("line %zu: too long (%zu bytes, max %zu)", i + 1,
                                                cur.lines[i].size(), kMaxLineBytes));
    }
  }

  Module mod;
  bool have_header = false;
  while (!cur.done()) {
    const auto line = cur.next();
    if (line.empty() || line.front() == ';' || line.front() == '#') continue;
    if (starts_with(line, "module ")) {
      if (have_header) {
        return make_error(ErrorCode::kParse, strf("line %zu: duplicate module header", cur.line_no()));
      }
      mod.name = std::string(trim(line.substr(7)));
      have_header = true;
    } else if (starts_with(line, "func ")) {
      if (!have_header) {
        return make_error(ErrorCode::kParse,
                          strf("line %zu: 'module NAME' must come first", cur.line_no()));
      }
      FunctionParser fp(cur);
      auto fn = fp.parse(line);
      if (!fn) return fn.error();
      mod.functions.push_back(std::move(fn).value());
    } else {
      return make_error(ErrorCode::kParse,
                        strf("line %zu: expected 'module' or 'func'", cur.line_no()));
    }
  }
  if (!have_header) return make_error(ErrorCode::kParse, "missing 'module NAME' header");
  return mod;
}

}  // namespace clara::cir
