// Concrete CIR interpreter.
//
// Clara does not execute the ported program (none exists) — but it does
// need to know, per packet, which blocks run and with what vcall
// arguments (paper §3.5: "simulate the execution for the set of packets,
// and identify how a packet traverses the parameterized LNIC"). The
// interpreter provides exactly that: it runs a CIR function against a
// model environment (the VCallHandler answers header reads and table
// lookups from a workload model) and records an execution trace — block
// visit counts plus every vcall with its concrete arguments. The
// prediction engine prices the trace against the mapping; the
// interpreter itself knows nothing about hardware.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cir/function.hpp"
#include "cir/vcalls.hpp"
#include "common/result.hpp"

namespace clara::cir {

/// Supplies vcall results during interpretation. Implementations model
/// the packet (header fields) and NF state (table contents).
class VCallHandler {
 public:
  virtual ~VCallHandler() = default;
  virtual std::uint64_t handle(VCall v, std::span<const std::uint64_t> args) = 0;
};

struct VCallEvent {
  std::uint32_t block = 0;
  std::uint32_t instr = 0;
  VCall v = VCall::kDrop;
  std::vector<std::uint64_t> args;
  std::uint64_t result = 0;
};

struct ExecTrace {
  /// Executions of each block (indexed like Function::blocks).
  std::vector<std::uint64_t> block_counts;
  std::vector<VCallEvent> vcalls;
  std::uint64_t steps = 0;
};

class Interpreter {
 public:
  Interpreter(const Function& fn, VCallHandler& handler) : fn_(fn), handler_(handler) {}

  /// Runs from the entry block to a ret. Fails on unsubstituted
  /// (non-vcall) calls, division by zero, or exceeding max_steps —
  /// the step bound protects against non-terminating IR.
  Result<ExecTrace> run(std::uint64_t max_steps = 10'000'000);

 private:
  const Function& fn_;
  VCallHandler& handler_;
};

}  // namespace clara::cir
