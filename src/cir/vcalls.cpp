#include "cir/vcalls.hpp"

#include <unordered_map>

namespace clara::cir {

const char* vcall_name(VCall v) {
  switch (v) {
    case VCall::kParse: return "vcall_parse";
    case VCall::kGetHdr: return "vcall_get_hdr";
    case VCall::kSetHdr: return "vcall_set_hdr";
    case VCall::kCsum: return "vcall_csum";
    case VCall::kCrypto: return "vcall_crypto";
    case VCall::kLpmLookup: return "vcall_lpm_lookup";
    case VCall::kTableLookup: return "vcall_table_lookup";
    case VCall::kTableUpdate: return "vcall_table_update";
    case VCall::kPayloadScan: return "vcall_payload_scan";
    case VCall::kMeter: return "vcall_meter";
    case VCall::kStatsUpdate: return "vcall_stats_update";
    case VCall::kEmit: return "vcall_emit";
    case VCall::kDrop: return "vcall_drop";
  }
  return "?";
}

std::optional<VCall> parse_vcall(std::string_view callee) {
  static const std::unordered_map<std::string_view, VCall> kMap = {
      {"vcall_parse", VCall::kParse},
      {"vcall_get_hdr", VCall::kGetHdr},
      {"vcall_set_hdr", VCall::kSetHdr},
      {"vcall_csum", VCall::kCsum},
      {"vcall_crypto", VCall::kCrypto},
      {"vcall_lpm_lookup", VCall::kLpmLookup},
      {"vcall_table_lookup", VCall::kTableLookup},
      {"vcall_table_update", VCall::kTableUpdate},
      {"vcall_payload_scan", VCall::kPayloadScan},
      {"vcall_meter", VCall::kMeter},
      {"vcall_stats_update", VCall::kStatsUpdate},
      {"vcall_emit", VCall::kEmit},
      {"vcall_drop", VCall::kDrop},
  };
  const auto it = kMap.find(callee);
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

const char* hdr_field_name(HdrField f) {
  switch (f) {
    case HdrField::kProto: return "proto";
    case HdrField::kSrcIp: return "src_ip";
    case HdrField::kDstIp: return "dst_ip";
    case HdrField::kSrcPort: return "src_port";
    case HdrField::kDstPort: return "dst_port";
    case HdrField::kTcpFlags: return "tcp_flags";
    case HdrField::kPayloadLen: return "payload_len";
    case HdrField::kPktLen: return "pkt_len";
    case HdrField::kFlowHash: return "flow_hash";
  }
  return "?";
}

std::optional<HdrField> parse_hdr_field(std::string_view name) {
  for (std::uint8_t i = 0; i < kNumHdrFields; ++i) {
    const auto f = static_cast<HdrField>(i);
    if (name == hdr_field_name(f)) return f;
  }
  return std::nullopt;
}

std::optional<VCall> framework_api_to_vcall(std::string_view api) {
  static const std::unordered_map<std::string_view, VCall> kMap = {
      // Click element helpers (paper §3.3's 'network_header' example).
      {"click_network_header", VCall::kParse},
      {"click_ip_header", VCall::kGetHdr},
      {"click_set_ip_header", VCall::kSetHdr},
      {"click_update_checksum", VCall::kCsum},
      // eBPF helpers.
      {"bpf_map_lookup_elem", VCall::kTableLookup},
      {"bpf_map_update_elem", VCall::kTableUpdate},
      {"bpf_csum_diff", VCall::kCsum},
      {"bpf_xdp_adjust_head", VCall::kSetHdr},
      {"bpf_redirect", VCall::kEmit},
      // DPDK (the paper's evaluation NFs are DPDK programs).
      {"rte_pktmbuf_mtod", VCall::kParse},
      {"rte_hash_lookup", VCall::kTableLookup},
      {"rte_hash_add_key", VCall::kTableUpdate},
      {"rte_lpm_lookup", VCall::kLpmLookup},
      {"rte_ipv4_udptcp_cksum", VCall::kCsum},
      {"rte_meter_srtcm_color_blind_check", VCall::kMeter},
      {"rte_eth_tx_burst", VCall::kEmit},
      {"rte_pktmbuf_free", VCall::kDrop},
      {"rte_crypto_enqueue", VCall::kCrypto},
  };
  const auto it = kMap.find(api);
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

}  // namespace clara::cir
