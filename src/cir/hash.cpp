#include "cir/hash.hpp"

#include "common/hash.hpp"

namespace clara::cir {

namespace {

void mix_value(Fnv1a& h, const Value& v) {
  h.mix_byte(static_cast<std::uint8_t>(v.kind));
  switch (v.kind) {
    case Value::Kind::kNone: break;
    case Value::Kind::kReg: h.mix(v.reg); break;
    case Value::Kind::kImm: h.mix(v.imm); break;
  }
}

void mix_instr(Fnv1a& h, const Instr& instr) {
  h.mix_byte(static_cast<std::uint8_t>(instr.op));
  h.mix_byte(static_cast<std::uint8_t>(instr.type));
  h.mix(instr.dst);
  h.mix(static_cast<std::uint64_t>(instr.args.size()));
  for (const auto& arg : instr.args) mix_value(h, arg);
  h.mix(instr.target0);
  h.mix(instr.target1);
  h.mix(std::string_view(instr.callee));
  h.mix_byte(static_cast<std::uint8_t>(instr.space));
  h.mix(instr.state);
  h.mix(static_cast<std::uint64_t>(instr.phi_preds.size()));
  for (std::uint32_t pred : instr.phi_preds) h.mix(pred);
}

void mix_sym(Fnv1a& h, const SymExpr& e) {
  h.mix(e.scale);
  h.mix(std::string_view(e.param));
  h.mix(e.bias);
}

}  // namespace

std::uint64_t hash_function(const Function& fn) {
  Fnv1a h;
  h.mix(std::string_view(fn.name));
  h.mix(fn.num_regs);
  h.mix(static_cast<std::uint64_t>(fn.blocks.size()));
  for (const auto& block : fn.blocks) {
    h.mix(std::string_view(block.label));
    h.mix(block.has_trip);
    mix_sym(h, block.trip);
    h.mix(static_cast<std::uint64_t>(block.instrs.size()));
    for (const auto& instr : block.instrs) mix_instr(h, instr);
  }
  h.mix(static_cast<std::uint64_t>(fn.state_objects.size()));
  for (const auto& so : fn.state_objects) {
    h.mix(std::string_view(so.name));
    h.mix(static_cast<std::uint64_t>(so.entry_bytes));
    h.mix(so.entries);
    h.mix_byte(static_cast<std::uint8_t>(so.pattern));
  }
  return h.digest();
}

}  // namespace clara::cir
