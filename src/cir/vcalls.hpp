// Canonical virtual calls and packet header fields.
//
// Virtual calls ("vcalls") are the CIR's interface to SmartNIC-mappable
// functionality: the API-substitution pass rewrites framework calls
// (Click / eBPF / DPDK) into these, and the mapper binds each vcall site
// to a hardware unit (accelerator or software fallback on an NPU).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace clara::cir {

enum class VCall : std::uint8_t {
  kParse,            // vcall_parse() — parse L2-L4 headers
  kGetHdr,           // vcall_get_hdr(field) -> value
  kSetHdr,           // vcall_set_hdr(field, value)
  kCsum,             // vcall_csum(len) — L4 checksum over payload
  kCrypto,           // vcall_crypto(len) — AES over payload
  kLpmLookup,        // vcall_lpm_lookup(state, key, use_flow_cache) -> next hop
  kTableLookup,      // vcall_table_lookup(state, key) -> found(1)/miss(0)
  kTableUpdate,      // vcall_table_update(state, key, value)
  kPayloadScan,      // vcall_payload_scan(len) — DPI byte scan (idiom-collapsed)
  kMeter,            // vcall_meter(state, flow) -> conforming(1)/exceed(0)
  kStatsUpdate,      // vcall_stats_update(state, key)
  kEmit,             // vcall_emit(port) — send packet
  kDrop,             // vcall_drop()
};

/// Canonical textual name ("vcall_csum", ...).
const char* vcall_name(VCall v);

/// Recognizes a canonical vcall name.
std::optional<VCall> parse_vcall(std::string_view callee);

/// True when the callee string is a canonical vcall.
inline bool is_vcall(std::string_view callee) { return parse_vcall(callee).has_value(); }

/// Packet header/metadata fields addressable by vcall_get_hdr/set_hdr.
/// Values are stable: they appear as immediates in serialized CIR.
enum class HdrField : std::uint8_t {
  kProto = 0,      // IP protocol (6 = TCP, 17 = UDP)
  kSrcIp = 1,
  kDstIp = 2,
  kSrcPort = 3,
  kDstPort = 4,
  kTcpFlags = 5,   // bit 1 = SYN, bit 2 = FIN/RST summary
  kPayloadLen = 6, // L4 payload bytes
  kPktLen = 7,     // total frame bytes
  kFlowHash = 8,   // 5-tuple hash, precomputed by the parser
};

inline constexpr std::uint8_t kNumHdrFields = 9;

const char* hdr_field_name(HdrField f);
std::optional<HdrField> parse_hdr_field(std::string_view name);

/// TCP flag bits used in kTcpFlags.
inline constexpr std::uint64_t kTcpFlagSyn = 0x1;
inline constexpr std::uint64_t kTcpFlagFin = 0x2;

/// Protocol numbers.
inline constexpr std::uint64_t kProtoTcp = 6;
inline constexpr std::uint64_t kProtoUdp = 17;

/// Maps a framework-specific API name to the canonical vcall it stands
/// for, or nullopt for names Clara does not recognize. Covers the Click,
/// eBPF and DPDK surfaces the paper mentions.
std::optional<VCall> framework_api_to_vcall(std::string_view api);

}  // namespace clara::cir
