// CIR containers: basic blocks, state objects, functions, modules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cir/instr.hpp"
#include "common/types.hpp"

namespace clara::cir {

/// A symbolic affine expression `scale * param + bias`, used for loop
/// trip counts whose value depends on workload parameters (e.g. a DPI
/// scan loop runs `payload_len` times). An empty param means a constant.
struct SymExpr {
  double scale = 0.0;
  std::string param;
  double bias = 0.0;

  static SymExpr constant(double c) { return SymExpr{0.0, {}, c}; }
  static SymExpr of_param(std::string name, double scale = 1.0, double bias = 0.0) {
    return SymExpr{scale, std::move(name), bias};
  }
  [[nodiscard]] bool is_constant() const { return param.empty(); }
  [[nodiscard]] double eval(double param_value) const { return scale * param_value + bias; }
};

struct BasicBlock {
  std::string label;
  std::vector<Instr> instrs;
  /// Expected trip count when this block is a loop body; used by the
  /// static cost model (the interpreter observes real counts instead).
  SymExpr trip = SymExpr::constant(1.0);
  bool has_trip = false;
};

/// How a state object is accessed; drives footprint/working-set math.
enum class StatePattern : std::uint8_t {
  kHashTable,  // keyed by flow: working set = active flows * entry size
  kArray,      // dense index
  kDirect,     // single record (e.g. an aggregate counter block)
};

const char* to_string(StatePattern pattern);

/// A named NF state object (flow table, rule table, counters). The
/// mapper's memory constraints (Γ) decide which LNIC memory region each
/// state object is placed in.
struct StateObject {
  std::string name;
  Bytes entry_bytes = 0;
  std::uint64_t entries = 0;
  StatePattern pattern = StatePattern::kHashTable;

  [[nodiscard]] Bytes total_bytes() const { return entry_bytes * entries; }
};

struct Function {
  std::string name;
  std::vector<BasicBlock> blocks;
  std::vector<StateObject> state_objects;
  std::uint32_t num_regs = 0;

  [[nodiscard]] const BasicBlock& entry() const { return blocks.front(); }
  [[nodiscard]] std::uint32_t find_block(std::string_view label) const;
  [[nodiscard]] std::uint32_t find_state(std::string_view name) const;
};

struct Module {
  std::string name;
  std::vector<Function> functions;

  [[nodiscard]] const Function* find_function(std::string_view name) const;
  [[nodiscard]] Function* find_function(std::string_view name);
};

}  // namespace clara::cir
