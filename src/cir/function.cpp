#include "cir/function.hpp"

namespace clara::cir {

const char* to_string(StatePattern pattern) {
  switch (pattern) {
    case StatePattern::kHashTable: return "hash";
    case StatePattern::kArray: return "array";
    case StatePattern::kDirect: return "direct";
  }
  return "?";
}

std::uint32_t Function::find_block(std::string_view label) const {
  for (std::uint32_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].label == label) return i;
  }
  return ~0u;
}

std::uint32_t Function::find_state(std::string_view state_name) const {
  for (std::uint32_t i = 0; i < state_objects.size(); ++i) {
    if (state_objects[i].name == state_name) return i;
  }
  return ~0u;
}

const Function* Module::find_function(std::string_view fn_name) const {
  for (const auto& f : functions) {
    if (f.name == fn_name) return &f;
  }
  return nullptr;
}

Function* Module::find_function(std::string_view fn_name) {
  for (auto& f : functions) {
    if (f.name == fn_name) return &f;
  }
  return nullptr;
}

}  // namespace clara::cir
