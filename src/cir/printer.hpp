// Textual form of CIR. print_* and parse_module round-trip: for any
// verified module m, parse_module(print_module(m)) is structurally equal.
#pragma once

#include <string>

#include "cir/function.hpp"
#include "common/result.hpp"

namespace clara::cir {

std::string print_function(const Function& fn);
std::string print_module(const Module& mod);

/// Parses the textual form produced by print_module. Errors carry a line
/// number. The parsed module is verified structurally by the caller (the
/// parser only enforces syntax).
Result<Module> parse_module(const std::string& text);

}  // namespace clara::cir
