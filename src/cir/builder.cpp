#include "cir/builder.hpp"

#include <cassert>

namespace clara::cir {

FunctionBuilder::FunctionBuilder(std::string name) { fn_.name = std::move(name); }

std::uint32_t FunctionBuilder::add_state(StateObject state) {
  fn_.state_objects.push_back(std::move(state));
  return static_cast<std::uint32_t>(fn_.state_objects.size() - 1);
}

std::uint32_t FunctionBuilder::create_block(std::string label) {
  BasicBlock block;
  block.label = std::move(label);
  fn_.blocks.push_back(std::move(block));
  return static_cast<std::uint32_t>(fn_.blocks.size() - 1);
}

void FunctionBuilder::set_insert_point(std::uint32_t block) {
  assert(block < fn_.blocks.size());
  cur_ = block;
}

void FunctionBuilder::set_trip(std::uint32_t block, SymExpr trip) {
  assert(block < fn_.blocks.size());
  fn_.blocks[block].trip = std::move(trip);
  fn_.blocks[block].has_trip = true;
}

BasicBlock& FunctionBuilder::cur_block() {
  assert(cur_ < fn_.blocks.size());
  return fn_.blocks[cur_];
}

Value FunctionBuilder::emit(Opcode op, Type t, std::vector<Value> args, bool produces_value) {
  Instr instr;
  instr.op = op;
  instr.type = t;
  instr.args = std::move(args);
  Value result = Value::none();
  if (produces_value && has_result(op)) {
    instr.dst = new_reg();
    result = Value::of_reg(instr.dst);
  }
  cur_block().instrs.push_back(std::move(instr));
  return result;
}

Value FunctionBuilder::add(Value a, Value b, Type t) { return emit(Opcode::kAdd, t, {a, b}); }
Value FunctionBuilder::sub(Value a, Value b, Type t) { return emit(Opcode::kSub, t, {a, b}); }
Value FunctionBuilder::mul(Value a, Value b, Type t) { return emit(Opcode::kMul, t, {a, b}); }
Value FunctionBuilder::div(Value a, Value b, Type t) { return emit(Opcode::kDiv, t, {a, b}); }
Value FunctionBuilder::rem(Value a, Value b, Type t) { return emit(Opcode::kRem, t, {a, b}); }
Value FunctionBuilder::band(Value a, Value b, Type t) { return emit(Opcode::kAnd, t, {a, b}); }
Value FunctionBuilder::bor(Value a, Value b, Type t) { return emit(Opcode::kOr, t, {a, b}); }
Value FunctionBuilder::bxor(Value a, Value b, Type t) { return emit(Opcode::kXor, t, {a, b}); }
Value FunctionBuilder::shl(Value a, Value b, Type t) { return emit(Opcode::kShl, t, {a, b}); }
Value FunctionBuilder::shr(Value a, Value b, Type t) { return emit(Opcode::kShr, t, {a, b}); }
Value FunctionBuilder::fadd(Value a, Value b) { return emit(Opcode::kFAdd, Type::kI64, {a, b}); }
Value FunctionBuilder::fmul(Value a, Value b) { return emit(Opcode::kFMul, Type::kI64, {a, b}); }

Value FunctionBuilder::cmp_eq(Value a, Value b) { return emit(Opcode::kEq, Type::kI64, {a, b}); }
Value FunctionBuilder::cmp_ne(Value a, Value b) { return emit(Opcode::kNe, Type::kI64, {a, b}); }
Value FunctionBuilder::cmp_lt(Value a, Value b) { return emit(Opcode::kLt, Type::kI64, {a, b}); }
Value FunctionBuilder::cmp_le(Value a, Value b) { return emit(Opcode::kLe, Type::kI64, {a, b}); }
Value FunctionBuilder::cmp_gt(Value a, Value b) { return emit(Opcode::kGt, Type::kI64, {a, b}); }
Value FunctionBuilder::cmp_ge(Value a, Value b) { return emit(Opcode::kGe, Type::kI64, {a, b}); }

Value FunctionBuilder::select(Value cond, Value a, Value b, Type t) {
  return emit(Opcode::kSelect, t, {cond, a, b});
}

Value FunctionBuilder::load_packet(Value offset, Type t) {
  Instr instr;
  instr.op = Opcode::kLoad;
  instr.type = t;
  instr.space = MemSpace::kPacket;
  instr.args = {offset};
  instr.dst = new_reg();
  cur_block().instrs.push_back(std::move(instr));
  return Value::of_reg(cur_block().instrs.back().dst);
}

Value FunctionBuilder::load_scratch(Value addr, Type t) {
  Instr instr;
  instr.op = Opcode::kLoad;
  instr.type = t;
  instr.space = MemSpace::kScratch;
  instr.args = {addr};
  instr.dst = new_reg();
  cur_block().instrs.push_back(std::move(instr));
  return Value::of_reg(cur_block().instrs.back().dst);
}

void FunctionBuilder::store_scratch(Value addr, Value value, Type t) {
  Instr instr;
  instr.op = Opcode::kStore;
  instr.type = t;
  instr.space = MemSpace::kScratch;
  instr.args = {addr, value};
  cur_block().instrs.push_back(std::move(instr));
}

Value FunctionBuilder::load_state(std::uint32_t state, Value index, Type t) {
  assert(state < fn_.state_objects.size());
  Instr instr;
  instr.op = Opcode::kLoad;
  instr.type = t;
  instr.space = MemSpace::kState;
  instr.state = state;
  instr.args = {index};
  instr.dst = new_reg();
  cur_block().instrs.push_back(std::move(instr));
  return Value::of_reg(cur_block().instrs.back().dst);
}

void FunctionBuilder::store_state(std::uint32_t state, Value index, Value value, Type t) {
  assert(state < fn_.state_objects.size());
  Instr instr;
  instr.op = Opcode::kStore;
  instr.type = t;
  instr.space = MemSpace::kState;
  instr.state = state;
  instr.args = {index, value};
  cur_block().instrs.push_back(std::move(instr));
}

void FunctionBuilder::br(std::uint32_t target) {
  Instr instr;
  instr.op = Opcode::kBr;
  instr.type = Type::kVoid;
  instr.target0 = target;
  cur_block().instrs.push_back(std::move(instr));
}

void FunctionBuilder::cond_br(Value cond, std::uint32_t if_true, std::uint32_t if_false) {
  Instr instr;
  instr.op = Opcode::kCondBr;
  instr.type = Type::kVoid;
  instr.args = {cond};
  instr.target0 = if_true;
  instr.target1 = if_false;
  cur_block().instrs.push_back(std::move(instr));
}

void FunctionBuilder::ret() {
  Instr instr;
  instr.op = Opcode::kRet;
  instr.type = Type::kVoid;
  cur_block().instrs.push_back(std::move(instr));
}

Value FunctionBuilder::phi(Type t) {
  Instr instr;
  instr.op = Opcode::kPhi;
  instr.type = t;
  instr.dst = new_reg();
  // Phis must precede non-phi instructions.
  auto& instrs = cur_block().instrs;
  std::size_t pos = 0;
  while (pos < instrs.size() && instrs[pos].op == Opcode::kPhi) ++pos;
  assert(pos == instrs.size() && "phi must be created before other instructions in the block");
  instrs.push_back(std::move(instr));
  return Value::of_reg(instrs.back().dst);
}

void FunctionBuilder::add_incoming(Value phi_value, Value incoming, std::uint32_t pred_block) {
  assert(phi_value.is_reg());
  for (auto& block : fn_.blocks) {
    for (auto& instr : block.instrs) {
      if (instr.op == Opcode::kPhi && instr.dst == phi_value.reg) {
        instr.args.push_back(incoming);
        instr.phi_preds.push_back(pred_block);
        return;
      }
    }
  }
  assert(false && "phi register not found");
}

Value FunctionBuilder::call(std::string callee, std::vector<Value> args, bool produces_value) {
  Instr instr;
  instr.op = Opcode::kCall;
  instr.type = produces_value ? Type::kI64 : Type::kVoid;
  instr.callee = std::move(callee);
  instr.args = std::move(args);
  Value result = Value::none();
  if (produces_value) {
    instr.dst = new_reg();
    result = Value::of_reg(instr.dst);
  }
  cur_block().instrs.push_back(std::move(instr));
  return result;
}

Value FunctionBuilder::vcall(VCall v, std::vector<Value> args, bool produces_value) {
  assert(args.size() == vcall_arg_count(v));
  return call(vcall_name(v), std::move(args), produces_value && vcall_produces_value(v));
}

Value FunctionBuilder::get_hdr(HdrField f) {
  return vcall(VCall::kGetHdr, {Value::of_imm(static_cast<std::int64_t>(f))});
}

void FunctionBuilder::set_hdr(HdrField f, Value v) {
  vcall(VCall::kSetHdr, {Value::of_imm(static_cast<std::int64_t>(f)), v}, false);
}

Function FunctionBuilder::take() {
  Function out = std::move(fn_);
  fn_ = Function{};
  cur_ = 0;
  return out;
}

unsigned vcall_arg_count(VCall v) {
  switch (v) {
    case VCall::kParse: return 0;
    case VCall::kGetHdr: return 1;
    case VCall::kSetHdr: return 2;
    case VCall::kCsum: return 1;
    case VCall::kCrypto: return 1;
    case VCall::kLpmLookup: return 3;  // state, key, use_flow_cache
    case VCall::kTableLookup: return 2;  // state, key
    case VCall::kTableUpdate: return 3;  // state, key, value
    case VCall::kPayloadScan: return 1;
    case VCall::kMeter: return 2;        // state, flow
    case VCall::kStatsUpdate: return 2;  // state, key
    case VCall::kEmit: return 1;
    case VCall::kDrop: return 0;
  }
  return 0;
}

bool vcall_takes_state(VCall v) {
  switch (v) {
    case VCall::kLpmLookup:
    case VCall::kTableLookup:
    case VCall::kTableUpdate:
    case VCall::kMeter:
    case VCall::kStatsUpdate:
      return true;
    default:
      return false;
  }
}

bool vcall_produces_value(VCall v) {
  switch (v) {
    case VCall::kGetHdr:
    case VCall::kLpmLookup:
    case VCall::kTableLookup:
    case VCall::kMeter:
    case VCall::kCsum:         // returns the checksum value
    case VCall::kPayloadScan:  // returns the match count
      return true;
    default:
      return false;
  }
}

}  // namespace clara::cir
