// Programmatic construction of CIR functions.
//
// This is Clara's front-end seam. The paper lowers C programs through
// LLVM; in this repository NFs are authored once, in "unported" form,
// against this builder (including framework-style API calls that the
// substitution pass later rewrites). See DESIGN.md §6 for the
// substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cir/function.hpp"
#include "cir/vcalls.hpp"

namespace clara::cir {

class FunctionBuilder {
 public:
  explicit FunctionBuilder(std::string name);

  /// Declares a state object; returns its index for load/store/vcalls.
  std::uint32_t add_state(StateObject state);

  /// Creates an (initially empty) block and returns its index. Blocks are
  /// laid out in creation order; the first created block is the entry.
  std::uint32_t create_block(std::string label);
  void set_insert_point(std::uint32_t block);
  [[nodiscard]] std::uint32_t insert_point() const { return cur_; }

  /// Annotates a block with an expected trip count (loop bodies).
  void set_trip(std::uint32_t block, SymExpr trip);

  // -- Arithmetic / logic -------------------------------------------------
  Value add(Value a, Value b, Type t = Type::kI64);
  Value sub(Value a, Value b, Type t = Type::kI64);
  Value mul(Value a, Value b, Type t = Type::kI64);
  Value div(Value a, Value b, Type t = Type::kI64);
  Value rem(Value a, Value b, Type t = Type::kI64);
  Value band(Value a, Value b, Type t = Type::kI64);
  Value bor(Value a, Value b, Type t = Type::kI64);
  Value bxor(Value a, Value b, Type t = Type::kI64);
  Value shl(Value a, Value b, Type t = Type::kI64);
  Value shr(Value a, Value b, Type t = Type::kI64);
  Value fadd(Value a, Value b);
  Value fmul(Value a, Value b);

  // -- Comparisons (result is 0/1 in an i64 register) ---------------------
  Value cmp_eq(Value a, Value b);
  Value cmp_ne(Value a, Value b);
  Value cmp_lt(Value a, Value b);
  Value cmp_le(Value a, Value b);
  Value cmp_gt(Value a, Value b);
  Value cmp_ge(Value a, Value b);

  Value select(Value cond, Value a, Value b, Type t = Type::kI64);

  // -- Memory --------------------------------------------------------------
  Value load_packet(Value offset, Type t = Type::kI8);
  Value load_scratch(Value addr, Type t = Type::kI64);
  void store_scratch(Value addr, Value value, Type t = Type::kI64);
  Value load_state(std::uint32_t state, Value index, Type t = Type::kI64);
  void store_state(std::uint32_t state, Value index, Value value, Type t = Type::kI64);

  // -- Control flow ---------------------------------------------------------
  void br(std::uint32_t target);
  void cond_br(Value cond, std::uint32_t if_true, std::uint32_t if_false);
  void ret();

  /// Creates a phi in the current block (phis must precede all non-phi
  /// instructions); wire incoming values with add_incoming once the
  /// predecessor values exist.
  Value phi(Type t = Type::kI64);
  void add_incoming(Value phi_value, Value incoming, std::uint32_t pred_block);

  // -- Calls ----------------------------------------------------------------
  /// Raw call by name (framework APIs use this). `produces_value` controls
  /// whether a destination register is allocated.
  Value call(std::string callee, std::vector<Value> args, bool produces_value = true);

  /// Canonical virtual calls.
  Value vcall(VCall v, std::vector<Value> args, bool produces_value = true);
  Value get_hdr(HdrField f);
  void set_hdr(HdrField f, Value v);

  /// Finalizes and returns the function (builder becomes empty).
  Function take();

 private:
  Value emit(Opcode op, Type t, std::vector<Value> args, bool produces_value = true);
  std::uint32_t new_reg() { return fn_.num_regs++; }
  BasicBlock& cur_block();

  Function fn_;
  std::uint32_t cur_ = 0;
};

/// Expected argument count for each vcall (state-taking vcalls include
/// the leading state-index immediate). Used by the builder (asserts) and
/// the verifier (errors).
unsigned vcall_arg_count(VCall v);

/// True if the vcall's first argument must be a state-object index
/// immediate.
bool vcall_takes_state(VCall v);

/// True if the vcall produces a result value.
bool vcall_produces_value(VCall v);

}  // namespace clara::cir
