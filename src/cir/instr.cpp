#include "cir/instr.hpp"

namespace clara::cir {

const char* to_string(Type t) {
  switch (t) {
    case Type::kVoid: return "void";
    case Type::kI8: return "i8";
    case Type::kI16: return "i16";
    case Type::kI32: return "i32";
    case Type::kI64: return "i64";
    case Type::kPtr: return "ptr";
  }
  return "?";
}

unsigned type_size(Type t) {
  switch (t) {
    case Type::kVoid: return 0;
    case Type::kI8: return 1;
    case Type::kI16: return 2;
    case Type::kI32: return 4;
    case Type::kI64: return 8;
    case Type::kPtr: return 8;
  }
  return 8;
}

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kRem: return "rem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kEq: return "eq";
    case Opcode::kNe: return "ne";
    case Opcode::kLt: return "lt";
    case Opcode::kLe: return "le";
    case Opcode::kGt: return "gt";
    case Opcode::kGe: return "ge";
    case Opcode::kSelect: return "select";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFMul: return "fmul";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kRet: return "ret";
    case Opcode::kCall: return "call";
    case Opcode::kPhi: return "phi";
  }
  return "?";
}

bool is_terminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kCondBr || op == Opcode::kRet;
}

bool has_result(Opcode op) {
  switch (op) {
    case Opcode::kStore:
    case Opcode::kBr:
    case Opcode::kCondBr:
    case Opcode::kRet:
      return false;
    case Opcode::kCall:
      return true;  // calls may produce a value; dst == kNoReg when unused
    default:
      return true;
  }
}

const char* to_string(MemSpace space) {
  switch (space) {
    case MemSpace::kPacket: return "packet";
    case MemSpace::kHeader: return "header";
    case MemSpace::kState: return "state";
    case MemSpace::kScratch: return "scratch";
  }
  return "?";
}

}  // namespace clara::cir
