// Structural verification of CIR functions.
//
// Invalid IR is an expected outcome at the tool boundary (hand-written
// .cir files, buggy front-ends), so verification returns a Status rather
// than asserting. The verifier enforces:
//  - at least one block; every block ends in exactly one terminator and
//    contains none before the end;
//  - branch targets are valid block indices;
//  - phis precede all non-phi instructions and their incoming blocks are
//    exactly the block's CFG predecessors;
//  - SSA: every register is defined exactly once, and every use is
//    dominated by its definition (computed via forward must-define
//    dataflow; phi uses are checked against the matching predecessor);
//  - state indices are in range, and only kState memory ops carry one;
//  - calls have a callee; canonical vcalls have the right arity, their
//    state arguments are in-range immediates, and value-producing vcalls
//    are the only ones with a destination register.
#pragma once

#include "cir/function.hpp"
#include "common/result.hpp"

namespace clara::cir {

Status verify(const Function& fn);
Status verify(const Module& mod);

}  // namespace clara::cir
