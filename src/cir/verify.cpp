#include "cir/verify.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "cir/builder.hpp"
#include "cir/vcalls.hpp"
#include "common/strings.hpp"

namespace clara::cir {

namespace {

struct Cfg {
  std::vector<std::vector<std::uint32_t>> preds;
  std::vector<std::vector<std::uint32_t>> succs;
};

Cfg build_cfg(const Function& fn) {
  Cfg cfg;
  cfg.preds.resize(fn.blocks.size());
  cfg.succs.resize(fn.blocks.size());
  for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
    const auto& instrs = fn.blocks[b].instrs;
    if (instrs.empty()) continue;
    const Instr& term = instrs.back();
    auto link = [&](std::uint32_t to) {
      if (to >= fn.blocks.size()) return;
      cfg.succs[b].push_back(to);
      cfg.preds[to].push_back(b);
    };
    if (term.op == Opcode::kBr) link(term.target0);
    if (term.op == Opcode::kCondBr) {
      link(term.target0);
      link(term.target1);
    }
  }
  return cfg;
}

Status check_block_structure(const Function& fn) {
  if (fn.blocks.empty()) return make_error(strf("function '%s': no blocks", fn.name.c_str()));
  for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
    const auto& block = fn.blocks[b];
    if (block.instrs.empty()) {
      return make_error(strf("%s/%s: empty block", fn.name.c_str(), block.label.c_str()));
    }
    bool seen_non_phi = false;
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      const Instr& instr = block.instrs[i];
      const bool last = i + 1 == block.instrs.size();
      if (is_terminator(instr.op) && !last) {
        return make_error(strf("%s/%s: terminator before end of block", fn.name.c_str(), block.label.c_str()));
      }
      if (last && !is_terminator(instr.op)) {
        return make_error(strf("%s/%s: block does not end in a terminator", fn.name.c_str(), block.label.c_str()));
      }
      if (instr.op == Opcode::kPhi) {
        if (seen_non_phi) {
          return make_error(strf("%s/%s: phi after non-phi instruction", fn.name.c_str(), block.label.c_str()));
        }
      } else {
        seen_non_phi = true;
      }
      if (instr.op == Opcode::kBr && instr.target0 >= fn.blocks.size()) {
        return make_error(strf("%s/%s: br target out of range", fn.name.c_str(), block.label.c_str()));
      }
      if (instr.op == Opcode::kCondBr &&
          (instr.target0 >= fn.blocks.size() || instr.target1 >= fn.blocks.size())) {
        return make_error(strf("%s/%s: condbr target out of range", fn.name.c_str(), block.label.c_str()));
      }
    }
  }
  return {};
}

Status check_phis(const Function& fn, const Cfg& cfg) {
  for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
    const auto& block = fn.blocks[b];
    std::set<std::uint32_t> preds(cfg.preds[b].begin(), cfg.preds[b].end());
    for (const Instr& instr : block.instrs) {
      if (instr.op != Opcode::kPhi) continue;
      if (instr.args.size() != instr.phi_preds.size()) {
        return make_error(strf("%s/%s: phi arg/pred count mismatch", fn.name.c_str(), block.label.c_str()));
      }
      std::set<std::uint32_t> incoming(instr.phi_preds.begin(), instr.phi_preds.end());
      if (incoming != preds) {
        return make_error(
            strf("%s/%s: phi incoming blocks do not match CFG predecessors", fn.name.c_str(), block.label.c_str()));
      }
      if (incoming.size() != instr.phi_preds.size()) {
        return make_error(strf("%s/%s: duplicate phi predecessor", fn.name.c_str(), block.label.c_str()));
      }
    }
  }
  return {};
}

Status check_memory_and_calls(const Function& fn) {
  for (const auto& block : fn.blocks) {
    for (const Instr& instr : block.instrs) {
      if (instr.op == Opcode::kLoad || instr.op == Opcode::kStore) {
        const unsigned want = instr.op == Opcode::kLoad ? 1 : 2;
        if (instr.args.size() != want) {
          return make_error(strf("%s/%s: %s needs %u operand(s)", fn.name.c_str(), block.label.c_str(),
                                 to_string(instr.op), want));
        }
        if (instr.space == MemSpace::kState) {
          if (instr.state >= fn.state_objects.size()) {
            return make_error(strf("%s/%s: state index out of range", fn.name.c_str(), block.label.c_str()));
          }
        } else if (instr.state != ~0u) {
          return make_error(
              strf("%s/%s: non-state memory op carries a state index", fn.name.c_str(), block.label.c_str()));
        }
      }
      if (instr.op == Opcode::kCall) {
        if (instr.callee.empty()) {
          return make_error(strf("%s/%s: call with empty callee", fn.name.c_str(), block.label.c_str()));
        }
        if (const auto v = parse_vcall(instr.callee)) {
          if (instr.args.size() != vcall_arg_count(*v)) {
            return make_error(strf("%s/%s: %s expects %u args, got %zu", fn.name.c_str(), block.label.c_str(),
                                   instr.callee.c_str(), vcall_arg_count(*v), instr.args.size()));
          }
          if (vcall_takes_state(*v)) {
            if (instr.args.empty() || !instr.args[0].is_imm() || instr.args[0].imm < 0 ||
                static_cast<std::size_t>(instr.args[0].imm) >= fn.state_objects.size()) {
              return make_error(strf("%s/%s: %s state argument must be an in-range immediate", fn.name.c_str(),
                                     block.label.c_str(), instr.callee.c_str()));
            }
          }
          if (instr.dst != kNoReg && !vcall_produces_value(*v)) {
            return make_error(strf("%s/%s: %s does not produce a value", fn.name.c_str(), block.label.c_str(),
                                   instr.callee.c_str()));
          }
        }
      }
    }
  }
  return {};
}

Status check_ssa(const Function& fn, const Cfg& cfg) {
  // Single assignment + register range.
  std::vector<int> def_block(fn.num_regs, -1);
  for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
    for (const Instr& instr : fn.blocks[b].instrs) {
      if (instr.dst == kNoReg) continue;
      if (instr.dst >= fn.num_regs) {
        return make_error(strf("%s: register %%%u out of range (num_regs=%u)", fn.name.c_str(), instr.dst,
                               fn.num_regs));
      }
      if (def_block[instr.dst] != -1) {
        return make_error(strf("%s: register %%%u defined more than once", fn.name.c_str(), instr.dst));
      }
      def_block[instr.dst] = static_cast<int>(b);
    }
  }

  // Forward must-define dataflow: in[b] = intersection of out[p] over
  // preds; out[b] = in[b] ∪ defs(b). Uses must be covered by the running
  // definition set; phi uses are checked against out[pred] instead.
  const std::size_t n = fn.blocks.size();
  std::vector<std::vector<bool>> out(n, std::vector<bool>(fn.num_regs, false));
  std::vector<bool> computed(n, false);

  auto block_defs = [&](std::uint32_t b, std::vector<bool>& set) {
    for (const Instr& instr : fn.blocks[b].instrs) {
      if (instr.dst != kNoReg) set[instr.dst] = true;
    }
  };

  bool changed = true;
  int iterations = 0;
  while (changed && iterations++ < static_cast<int>(n) + 2) {
    changed = false;
    for (std::uint32_t b = 0; b < n; ++b) {
      std::vector<bool> in(fn.num_regs, b != 0);  // entry starts empty; others start "all" for intersection
      if (b != 0) {
        bool any_pred = false;
        for (const std::uint32_t p : cfg.preds[b]) {
          if (!computed[p]) continue;
          any_pred = true;
          for (std::uint32_t r = 0; r < fn.num_regs; ++r) in[r] = in[r] && out[p][r];
        }
        if (!any_pred) std::fill(in.begin(), in.end(), false);
      }
      block_defs(b, in);
      if (!computed[b] || in != out[b]) {
        out[b] = std::move(in);
        computed[b] = true;
        changed = true;
      }
    }
  }

  for (std::uint32_t b = 0; b < n; ++b) {
    // Running definition set within the block, seeded from the
    // intersection of predecessor outs.
    std::vector<bool> live(fn.num_regs, b != 0);
    if (b != 0) {
      bool any_pred = false;
      for (const std::uint32_t p : cfg.preds[b]) {
        any_pred = true;
        for (std::uint32_t r = 0; r < fn.num_regs; ++r) live[r] = live[r] && out[p][r];
      }
      if (!any_pred) std::fill(live.begin(), live.end(), false);
    }
    // Phi destinations are defined "at the top" (they execute in parallel).
    for (const Instr& instr : fn.blocks[b].instrs) {
      if (instr.op == Opcode::kPhi && instr.dst != kNoReg) live[instr.dst] = true;
    }
    for (const Instr& instr : fn.blocks[b].instrs) {
      if (instr.op == Opcode::kPhi) {
        for (std::size_t a = 0; a < instr.args.size(); ++a) {
          const Value& v = instr.args[a];
          if (!v.is_reg()) continue;
          const std::uint32_t pred = instr.phi_preds[a];
          if (v.reg >= fn.num_regs || !out[pred][v.reg]) {
            return make_error(strf("%s/%s: phi uses %%%u not defined on edge from block %u", fn.name.c_str(),
                                   fn.blocks[b].label.c_str(), v.reg, pred));
          }
        }
        continue;
      }
      for (const Value& v : instr.args) {
        if (!v.is_reg()) continue;
        if (v.reg >= fn.num_regs || !live[v.reg]) {
          return make_error(strf("%s/%s: use of %%%u before definition", fn.name.c_str(),
                                 fn.blocks[b].label.c_str(), v.reg));
        }
      }
      if (instr.dst != kNoReg) live[instr.dst] = true;
    }
  }
  return {};
}

}  // namespace

Status verify(const Function& fn) {
  if (auto s = check_block_structure(fn); !s) return s;
  const Cfg cfg = build_cfg(fn);
  if (auto s = check_phis(fn, cfg); !s) return s;
  if (auto s = check_memory_and_calls(fn); !s) return s;
  if (auto s = check_ssa(fn, cfg); !s) return s;
  return {};
}

Status verify(const Module& mod) {
  std::set<std::string> names;
  for (const auto& fn : mod.functions) {
    if (!names.insert(fn.name).second) {
      return make_error(strf("module '%s': duplicate function '%s'", mod.name.c_str(), fn.name.c_str()));
    }
    if (auto s = verify(fn); !s) return s;
  }
  return {};
}

}  // namespace clara::cir
