#include "cir/interp.hpp"

#include <unordered_map>

#include "common/strings.hpp"

namespace clara::cir {

namespace {

/// Width mask for a type (void/ptr treated as full width).
std::uint64_t type_mask(Type t) {
  switch (t) {
    case Type::kI8: return 0xffULL;
    case Type::kI16: return 0xffffULL;
    case Type::kI32: return 0xffffffffULL;
    default: return ~0ULL;
  }
}

/// Deterministic pseudo-content for packet bytes: prediction only needs
/// branch decisions to be stable, not real payloads.
std::uint64_t synth_byte(std::uint64_t addr) {
  std::uint64_t z = addr + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return (z ^ (z >> 27)) & 0xff;
}

}  // namespace

Result<ExecTrace> Interpreter::run(std::uint64_t max_steps) {
  ExecTrace trace;
  trace.block_counts.assign(fn_.blocks.size(), 0);

  std::vector<std::uint64_t> regs(fn_.num_regs, 0);
  std::unordered_map<std::uint64_t, std::uint64_t> scratch;
  std::unordered_map<std::uint64_t, std::uint64_t> header_mem;
  std::unordered_map<std::uint64_t, std::uint64_t> packet_mem;
  // One value map per state object.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> state_mem(fn_.state_objects.size());

  auto eval = [&](const Value& v) -> std::uint64_t {
    switch (v.kind) {
      case Value::Kind::kReg: return regs[v.reg];
      case Value::Kind::kImm: return static_cast<std::uint64_t>(v.imm);
      case Value::Kind::kNone: return 0;
    }
    return 0;
  };

  std::uint32_t block = 0;
  std::uint32_t prev_block = ~0u;

  while (true) {
    if (block >= fn_.blocks.size()) return make_error("interpreter: branch to invalid block");
    ++trace.block_counts[block];
    const BasicBlock& bb = fn_.blocks[block];

    // Phis execute in parallel at block entry.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> phi_writes;
    std::size_t i = 0;
    for (; i < bb.instrs.size() && bb.instrs[i].op == Opcode::kPhi; ++i) {
      const Instr& phi = bb.instrs[i];
      bool matched = false;
      for (std::size_t a = 0; a < phi.phi_preds.size(); ++a) {
        if (phi.phi_preds[a] == prev_block) {
          phi_writes.emplace_back(phi.dst, eval(phi.args[a]) & type_mask(phi.type));
          matched = true;
          break;
        }
      }
      if (!matched) return make_error(strf("interpreter: phi in '%s' has no edge from predecessor", bb.label.c_str()));
    }
    for (const auto& [dst, val] : phi_writes) regs[dst] = val;

    for (; i < bb.instrs.size(); ++i) {
      const Instr& instr = bb.instrs[i];
      if (++trace.steps > max_steps) return make_error("interpreter: step limit exceeded");
      const std::uint64_t mask = type_mask(instr.type);

      switch (instr.op) {
        case Opcode::kAdd: regs[instr.dst] = (eval(instr.args[0]) + eval(instr.args[1])) & mask; break;
        case Opcode::kSub: regs[instr.dst] = (eval(instr.args[0]) - eval(instr.args[1])) & mask; break;
        case Opcode::kMul: regs[instr.dst] = (eval(instr.args[0]) * eval(instr.args[1])) & mask; break;
        case Opcode::kFAdd: regs[instr.dst] = (eval(instr.args[0]) + eval(instr.args[1])) & mask; break;
        case Opcode::kFMul: regs[instr.dst] = (eval(instr.args[0]) * eval(instr.args[1])) & mask; break;
        case Opcode::kDiv: {
          const std::uint64_t d = eval(instr.args[1]);
          if (d == 0) return make_error("interpreter: division by zero");
          regs[instr.dst] = (eval(instr.args[0]) / d) & mask;
          break;
        }
        case Opcode::kRem: {
          const std::uint64_t d = eval(instr.args[1]);
          if (d == 0) return make_error("interpreter: remainder by zero");
          regs[instr.dst] = (eval(instr.args[0]) % d) & mask;
          break;
        }
        case Opcode::kAnd: regs[instr.dst] = (eval(instr.args[0]) & eval(instr.args[1])) & mask; break;
        case Opcode::kOr: regs[instr.dst] = (eval(instr.args[0]) | eval(instr.args[1])) & mask; break;
        case Opcode::kXor: regs[instr.dst] = (eval(instr.args[0]) ^ eval(instr.args[1])) & mask; break;
        case Opcode::kShl: regs[instr.dst] = (eval(instr.args[0]) << (eval(instr.args[1]) & 63)) & mask; break;
        case Opcode::kShr: regs[instr.dst] = (eval(instr.args[0]) >> (eval(instr.args[1]) & 63)) & mask; break;
        case Opcode::kEq: regs[instr.dst] = eval(instr.args[0]) == eval(instr.args[1]) ? 1 : 0; break;
        case Opcode::kNe: regs[instr.dst] = eval(instr.args[0]) != eval(instr.args[1]) ? 1 : 0; break;
        case Opcode::kLt: regs[instr.dst] = eval(instr.args[0]) < eval(instr.args[1]) ? 1 : 0; break;
        case Opcode::kLe: regs[instr.dst] = eval(instr.args[0]) <= eval(instr.args[1]) ? 1 : 0; break;
        case Opcode::kGt: regs[instr.dst] = eval(instr.args[0]) > eval(instr.args[1]) ? 1 : 0; break;
        case Opcode::kGe: regs[instr.dst] = eval(instr.args[0]) >= eval(instr.args[1]) ? 1 : 0; break;
        case Opcode::kSelect:
          regs[instr.dst] = (eval(instr.args[0]) != 0 ? eval(instr.args[1]) : eval(instr.args[2])) & mask;
          break;
        case Opcode::kLoad: {
          const std::uint64_t addr = eval(instr.args[0]);
          std::uint64_t value = 0;
          switch (instr.space) {
            case MemSpace::kPacket: {
              const auto it = packet_mem.find(addr);
              value = it != packet_mem.end() ? it->second : synth_byte(addr);
              break;
            }
            case MemSpace::kHeader: {
              const auto it = header_mem.find(addr);
              value = it != header_mem.end() ? it->second : 0;
              break;
            }
            case MemSpace::kScratch: {
              const auto it = scratch.find(addr);
              value = it != scratch.end() ? it->second : 0;
              break;
            }
            case MemSpace::kState: {
              const auto it = state_mem[instr.state].find(addr);
              value = it != state_mem[instr.state].end() ? it->second : 0;
              break;
            }
          }
          regs[instr.dst] = value & mask;
          break;
        }
        case Opcode::kStore: {
          const std::uint64_t addr = eval(instr.args[0]);
          const std::uint64_t value = eval(instr.args[1]) & mask;
          switch (instr.space) {
            case MemSpace::kPacket: packet_mem[addr] = value; break;
            case MemSpace::kHeader: header_mem[addr] = value; break;
            case MemSpace::kScratch: scratch[addr] = value; break;
            case MemSpace::kState: state_mem[instr.state][addr] = value; break;
          }
          break;
        }
        case Opcode::kCall: {
          const auto v = parse_vcall(instr.callee);
          if (!v) {
            return make_error(strf("interpreter: unsubstituted call '%s' (run the API substitution pass first)",
                                   instr.callee.c_str()));
          }
          VCallEvent event;
          event.block = block;
          event.instr = static_cast<std::uint32_t>(i);
          event.v = *v;
          event.args.reserve(instr.args.size());
          for (const auto& arg : instr.args) event.args.push_back(eval(arg));
          event.result = handler_.handle(*v, event.args);
          if (instr.dst != kNoReg) regs[instr.dst] = event.result;
          trace.vcalls.push_back(std::move(event));
          break;
        }
        case Opcode::kBr:
          prev_block = block;
          block = instr.target0;
          goto next_block;
        case Opcode::kCondBr:
          prev_block = block;
          block = eval(instr.args[0]) != 0 ? instr.target0 : instr.target1;
          goto next_block;
        case Opcode::kRet:
          return trace;
        case Opcode::kPhi:
          return make_error("interpreter: phi after non-phi instruction");
      }
    }
    return make_error(strf("interpreter: block '%s' fell through without a terminator", bb.label.c_str()));
  next_block:;
  }
}

}  // namespace clara::cir
