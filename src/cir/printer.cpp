#include "cir/printer.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace clara::cir {

namespace {

std::string value_str(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kReg: return strf("%%%u", v.reg);
    case Value::Kind::kImm: return strf("%lld", (long long)v.imm);
    case Value::Kind::kNone: return "<none>";
  }
  return "?";
}

std::string trip_str(const SymExpr& e) {
  if (e.is_constant()) return strf("%g", e.bias);
  return strf("%g*%s+%g", e.scale, e.param.c_str(), e.bias);
}

void print_instr(std::ostringstream& os, const Function& fn, const Instr& instr) {
  os << "    ";
  if (instr.dst != kNoReg) os << "%" << instr.dst << " = ";
  switch (instr.op) {
    case Opcode::kBr:
      os << "br " << fn.blocks[instr.target0].label;
      break;
    case Opcode::kCondBr:
      os << "condbr " << value_str(instr.args[0]) << ", " << fn.blocks[instr.target0].label << ", "
         << fn.blocks[instr.target1].label;
      break;
    case Opcode::kRet:
      os << "ret";
      break;
    case Opcode::kLoad:
      os << "load." << to_string(instr.type) << " ";
      if (instr.space == MemSpace::kState) {
        os << "state(" << fn.state_objects[instr.state].name << ")";
      } else {
        os << to_string(instr.space);
      }
      os << "[" << value_str(instr.args[0]) << "]";
      break;
    case Opcode::kStore:
      os << "store." << to_string(instr.type) << " ";
      if (instr.space == MemSpace::kState) {
        os << "state(" << fn.state_objects[instr.state].name << ")";
      } else {
        os << to_string(instr.space);
      }
      os << "[" << value_str(instr.args[0]) << "], " << value_str(instr.args[1]);
      break;
    case Opcode::kCall: {
      os << "call." << to_string(instr.type) << " " << instr.callee << "(";
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        if (i) os << ", ";
        os << value_str(instr.args[i]);
      }
      os << ")";
      break;
    }
    case Opcode::kPhi: {
      os << "phi." << to_string(instr.type) << " ";
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        if (i) os << ", ";
        os << "[" << value_str(instr.args[i]) << ", " << fn.blocks[instr.phi_preds[i]].label << "]";
      }
      break;
    }
    default: {
      os << to_string(instr.op) << "." << to_string(instr.type) << " ";
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        if (i) os << ", ";
        os << value_str(instr.args[i]);
      }
      break;
    }
  }
  os << "\n";
}

}  // namespace

std::string print_function(const Function& fn) {
  std::ostringstream os;
  os << "func " << fn.name << " {\n";
  for (const auto& state : fn.state_objects) {
    os << "  state " << state.name << " entries=" << state.entries << " entry_bytes=" << state.entry_bytes
       << " pattern=" << to_string(state.pattern) << "\n";
  }
  for (const auto& block : fn.blocks) {
    os << "  block " << block.label;
    if (block.has_trip) os << " [trip=" << trip_str(block.trip) << "]";
    os << ":\n";
    for (const auto& instr : block.instrs) print_instr(os, fn, instr);
  }
  os << "}\n";
  return os.str();
}

std::string print_module(const Module& mod) {
  std::ostringstream os;
  os << "module " << mod.name << "\n";
  for (const auto& fn : mod.functions) os << print_function(fn);
  return os.str();
}

}  // namespace clara::cir
