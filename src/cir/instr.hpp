// Clara IR (CIR) instructions — paper §3.3.
//
// The CIR is a hardware-independent bytecode in the spirit of LLVM IR:
// typed virtual registers in SSA-lite form, basic blocks with explicit
// terminators, and calls. NF-framework API calls (Click / eBPF / DPDK)
// appear as ordinary calls and are rewritten to canonical "virtual calls"
// by the API-substitution pass; virtual calls are what the mapper binds
// to SmartNIC hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace clara::cir {

enum class Type : std::uint8_t { kVoid, kI8, kI16, kI32, kI64, kPtr };

const char* to_string(Type t);

/// Bit width in bytes (0 for void/ptr-opaque widths use 8).
unsigned type_size(Type t);

enum class Opcode : std::uint8_t {
  // Arithmetic / logic (dst = a op b). Unsigned semantics.
  kAdd, kSub, kMul, kDiv, kRem, kAnd, kOr, kXor, kShl, kShr,
  // Comparisons (dst = a cmp b ? 1 : 0).
  kEq, kNe, kLt, kLe, kGt, kGe,
  // dst = cond ? a : b
  kSelect,
  // Floating point marker ops: same shapes as kAdd/kMul but require an
  // FPU; SmartNIC datapaths without one pay the emulation penalty
  // (paper §3.4).
  kFAdd, kFMul,
  // Memory. kLoad: dst = mem[space/state][addr]; kStore: mem[...] = value.
  kLoad, kStore,
  // Control flow.
  kBr, kCondBr, kRet,
  // Calls: framework APIs and virtual calls; `callee` holds the name.
  kCall,
  // SSA merge; args parallel to `phi_preds`.
  kPhi,
};

const char* to_string(Opcode op);
bool is_terminator(Opcode op);
bool has_result(Opcode op);

/// Memory spaces a load/store can address. The space determines who pays
/// for the access: packet bytes live wherever the datapath put the packet
/// (CTM with EMEM spill), state objects live wherever the Γ constraints
/// placed them, and scratch is per-core local memory.
enum class MemSpace : std::uint8_t {
  kPacket,   // packet payload bytes
  kHeader,   // parsed header fields (post-parse, in local memory)
  kState,    // a named state object (flow table, counters, rules)
  kScratch,  // per-core local scratch
};

const char* to_string(MemSpace space);

inline constexpr std::uint32_t kNoReg = ~std::uint32_t{0};

/// An operand: a virtual register or an immediate.
struct Value {
  enum class Kind : std::uint8_t { kNone, kReg, kImm } kind = Kind::kNone;
  std::uint32_t reg = kNoReg;
  std::int64_t imm = 0;

  static Value none() { return {}; }
  static Value of_reg(std::uint32_t r) {
    Value v;
    v.kind = Kind::kReg;
    v.reg = r;
    return v;
  }
  static Value of_imm(std::int64_t i) {
    Value v;
    v.kind = Kind::kImm;
    v.imm = i;
    return v;
  }
  [[nodiscard]] bool is_reg() const { return kind == Kind::kReg; }
  [[nodiscard]] bool is_imm() const { return kind == Kind::kImm; }
  [[nodiscard]] bool is_none() const { return kind == Kind::kNone; }

  friend bool operator==(const Value&, const Value&) = default;
};

struct Instr {
  Opcode op = Opcode::kRet;
  Type type = Type::kI64;
  std::uint32_t dst = kNoReg;
  std::vector<Value> args;

  // kBr/kCondBr block targets (indices into Function::blocks). For
  // kCondBr, target0 is taken when the condition is non-zero.
  std::uint32_t target0 = ~0u;
  std::uint32_t target1 = ~0u;

  // kCall payload.
  std::string callee;

  // kLoad/kStore payload. For kState, `state` indexes
  // Function::state_objects; args[0] is the address/index (for kStore,
  // args[1] is the stored value).
  MemSpace space = MemSpace::kScratch;
  std::uint32_t state = ~0u;

  // kPhi: incoming block indices, parallel to args.
  std::vector<std::uint32_t> phi_preds;
};

}  // namespace clara::cir
