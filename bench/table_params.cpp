// §3.2 parameter table — the Netronome Agilio numbers the paper quotes
// (local 1-3 cyc, CTM 50 cyc / 256 kB, IMEM 250 cyc / 4 MB, EMEM 500 cyc
// / 8 GB + 3 MB cache; parse ~150 cyc; metadata 2-5 cyc) plus the §2.1
// checksum example (ingress accelerator ~300 cyc for 1000 B vs ~1700
// extra on an NPU core). Columns: databook value, value extracted by the
// microbenchmark suite running on the simulated hardware, and the paper
// quote. Also prints the EMEM working-set latency curve whose knee the
// half-latency rule uses to discover the cache capacity.
#include "bench_util.hpp"
#include "microbench/microbench.hpp"

int main() {
  using namespace clara;
  using namespace clara::bench;
  namespace keys = lnic::keys;

  header("Section 3.2: Netronome parameters (databook vs microbenchmark extraction)",
         "local 1-3cyc, CTM 50cyc, IMEM 250cyc, EMEM 500cyc + 3MB cache; parse ~150; move 2-5; csum 300 vs +1700");

  const auto databook = lnic::netronome_agilio_cx().params;
  const auto extraction = microbench::extract_parameters(nicsim::netronome_config(), databook);
  const auto& measured = extraction.params;

  struct Row {
    const char* name;
    const char* key;
    const char* paper;
  };
  const Row kRows[] = {
      {"local memory read (cyc)", keys::kMemReadLocal, "1-3"},
      {"CTM read (cyc)", keys::kMemReadCtm, "~50"},
      {"IMEM read (cyc)", keys::kMemReadImem, "up to 250"},
      {"EMEM read (cyc)", keys::kMemReadEmem, "up to 500"},
      {"EMEM cache hit (cyc)", keys::kEmemCacheHit, "(cache present, 3 MB)"},
      {"metadata modification (cyc)", keys::kInstrMove, "2-5"},
      {"checksum sw extra (cyc)", keys::kCsumSwExtra, "~1700"},
      {"flow cache hit (cyc)", keys::kFlowCacheHit, "(SRAM table)"},
      {"ingress DMA per byte (cyc)", keys::kIngressDmaPerByte, "-"},
      {"egress base (cyc)", keys::kEgressBase, "-"},
  };

  TextTable table({"parameter", "databook", "microbenchmarked", "paper quote"});
  for (const auto& row : kRows) {
    table.add_row({row.name, fmt1(databook.scalar(row.key)), fmt1(measured.scalar(row.key)), row.paper});
  }
  table.add_row({"header parse, 40B hdr (cyc)",
                 fmt1(databook.scalar(keys::kParseBase) + 40 * databook.scalar(keys::kParsePerByte)),
                 fmt1(measured.scalar(keys::kParseBase) + 40 * measured.scalar(keys::kParsePerByte)), "~150"});
  table.add_row({"csum accel @1000B (cyc)", fmt1(databook.eval(keys::kCsumAccel, 1000)),
                 fmt1(measured.eval(keys::kCsumAccel, 1000)), "~300"});
  table.add_row({"LPM DRAM @30k entries (Kcyc)", fmt1(databook.eval(keys::kLpmDram, 30000) / 1000.0),
                 fmt1(measured.eval(keys::kLpmDram, 30000) / 1000.0), "(grows with entries)"});
  std::printf("%s", table.render().c_str());

  std::printf("\nEMEM working-set latency curve (knee -> cache capacity, half-latency rule):\n");
  TextTable knee({"working set (MiB)", "avg access latency (cyc)"});
  for (const auto& [ws, lat] : microbench::emem_workingset_curve(nicsim::netronome_config())) {
    knee.add_row({fmt1(ws), fmt1(lat)});
  }
  std::printf("%s", knee.render().c_str());
  std::printf("discovered EMEM cache capacity: %s (true: 3 MiB)\n",
              format_bytes(extraction.discovered_emem_cache).c_str());

  std::printf("\nmeasurement log:\n%s", extraction.report.c_str());
  return 0;
}
