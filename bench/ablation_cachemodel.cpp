// Ablation: predictor model components (DESIGN.md §3).
//
// Two knobs the predictor can turn off:
//  * the EMEM cache hit-rate model (off => every EMEM access priced at
//    full DRAM latency);
//  * idiom pattern matching (off => byte loops priced as general NPU
//    instruction streams instead of vcall curves).
// For each, prediction error vs. the simulator with the knob on/off.
#include <cmath>

#include "bench_util.hpp"

int main() {
  using namespace clara;
  using namespace clara::bench;

  header("Ablation: predictor components (EMEM cache model, pattern matching)",
         "each abstraction earns its keep: error grows when disabled");

  core::Analyzer analyzer(lnic::netronome_agilio_cx());

  // --- EMEM cache model, on a cache-friendly NAT workload ----------------
  {
    const auto trace = make_trace("tcp=0.8 flows=3000 zipf=1.1 payload=300 pps=60000 packets=20000");
    const auto nat = nf::build_nat_nf();
    core::AnalyzeOptions with;
    core::AnalyzeOptions without;
    without.predict.model_emem_cache = false;
    const auto a = analyze_or_die(analyzer, nat, trace, with);
    const auto b = analyze_or_die(analyzer, nat, trace, without);

    nicsim::NicSim sim;
    auto& table =
        sim.create_table("flow_table", 131072, 64, level_of(analyzer.profile(), a.mapping.state_region[0]));
    nf::NatProgram ported(table, true);
    const auto stats = sim.run(ported, trace);

    TextTable out({"predictor", "predicted (cyc)", "actual (cyc)", "error"});
    out.add_row({"cache model ON", fmt(a.prediction.mean_latency_cycles), fmt(stats.mean_latency()),
                 pct(std::abs(a.prediction.mean_latency_cycles - stats.mean_latency()) / stats.mean_latency())});
    out.add_row({"cache model OFF", fmt(b.prediction.mean_latency_cycles), fmt(stats.mean_latency()),
                 pct(std::abs(b.prediction.mean_latency_cycles - stats.mean_latency()) / stats.mean_latency())});
    std::printf("NAT, skewed 3k-flow workload (hot table lives in the EMEM cache):\n%s\n", out.render().c_str());
  }

  // --- Pattern matching, on DPI -------------------------------------------
  {
    const auto trace = make_trace("payload=1000 pps=60000 packets=15000");
    const auto dpi = nf::build_dpi_nf();
    core::AnalyzeOptions with;
    core::AnalyzeOptions without;
    without.stages = core::PipelineStages::no_patterns();
    const auto a = analyze_or_die(analyzer, dpi, trace, with);
    const auto b = analyze_or_die(analyzer, dpi, trace, without);

    nicsim::NicSim sim;
    nf::DpiProgram ported;
    const auto stats = sim.run(ported, trace);

    TextTable out({"predictor", "predicted (cyc)", "actual (cyc)", "error"});
    out.add_row({"pattern matching ON", fmt(a.prediction.mean_latency_cycles), fmt(stats.mean_latency()),
                 pct(std::abs(a.prediction.mean_latency_cycles - stats.mean_latency()) / stats.mean_latency())});
    out.add_row({"pattern matching OFF", fmt(b.prediction.mean_latency_cycles), fmt(stats.mean_latency()),
                 pct(std::abs(b.prediction.mean_latency_cycles - stats.mean_latency()) / stats.mean_latency())});
    std::printf("DPI, 1000 B payloads (scan loop vs instruction-stream pricing):\n%s", out.render().c_str());
  }
  return 0;
}
