// Figure 1 — Performance variability of five network functions on a
// Netronome SmartNIC: 2-4 implementation/workload variants per NF with
// identical core logic, latencies normalized against the fastest
// variant. The paper observes spreads up to 13.8x. This bench runs every
// variant on the simulator substrate (Figure 1 is a hardware-measurement
// motivation figure; Clara is not involved).
#include "bench_util.hpp"

namespace clara::bench {
namespace {

struct Variant {
  std::string nf;
  std::string label;
  double latency = 0.0;
};

void run_nat(std::vector<Variant>& out) {
  const auto trace = make_trace("tcp=0.8 flows=10000 payload=800 pps=60000 packets=20000");
  for (const bool accel : {true, false}) {
    nicsim::NicSim sim;
    auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
    nf::NatProgram program(table, accel);
    out.push_back({"NAT", accel ? "csum-accel" : "csum-software", sim.run(program, trace).mean_latency()});
  }
}

void run_dpi(std::vector<Variant>& out) {
  for (const int payload : {200, 700, 1400}) {
    const auto trace = make_trace(strf("payload=%d pps=60000 packets=20000", payload));
    nicsim::NicSim sim;
    nf::DpiProgram program;
    out.push_back({"DPI", strf("%dB-packets", payload), sim.run(program, trace).mean_latency()});
  }
}

void run_fw(std::vector<Variant>& out) {
  // State in different memory locations x flow distributions (the paper's
  // firewall variants). A uniform distribution over many flows defeats
  // the EMEM cache; a skewed one keeps the hot set resident.
  const struct {
    nicsim::MemLevel level;
    const char* dist;
    const char* label;
  } kVariants[] = {
      {nicsim::MemLevel::kCtm, "zipf=1.1 flows=2000", "ctm/skewed"},
      {nicsim::MemLevel::kImem, "zipf=1.1 flows=2000", "imem/skewed"},
      {nicsim::MemLevel::kEmem, "zipf=1.1 flows=2000", "emem/skewed"},
      {nicsim::MemLevel::kEmem, "zipf=0.0 flows=200000", "emem/uniform"},
  };
  for (const auto& variant : kVariants) {
    const auto trace =
        make_trace(strf("tcp=1.0 %s payload=300 pps=60000 packets=30000", variant.dist));
    nicsim::NicSim sim;
    auto& conn = sim.create_table("conn", 262144, 64, variant.level);  // 16 MiB worth of slots
    auto& rules = sim.create_table("rules", 1024, 32, nicsim::MemLevel::kCtm);
    nf::FwProgram program(conn, rules);
    out.push_back({"FW", variant.label, sim.run(program, trace).mean_latency()});
  }
}

void run_lpm(std::vector<Variant>& out) {
  // Rule-count x flow-cache variants.
  const auto trace = make_trace("flows=3000 zipf=1.2 payload=300 pps=60000 packets=20000");
  for (const std::uint64_t rules : {1000ull, 2000ull}) {
    for (const bool fc : {true, false}) {
      nicsim::NicSim sim;
      auto& lpm = sim.create_lpm("routes", rules, 4096);
      nf::LpmProgram program(lpm, fc);
      out.push_back({"LPM", strf("%llu-rules/%s", (unsigned long long)rules, fc ? "flow-cache" : "no-cache"),
                     sim.run(program, trace).mean_latency()});
    }
  }
}

void run_hh(std::vector<Variant>& out) {
  // Varying packet rates (the paper's HH variants). With 224 hardware
  // threads the device only shows rate sensitivity near its limits, so
  // the sweep approaches the ingress-hub service bound.
  for (const double pps : {60e3, 16e6, 19.5e6}) {
    const auto trace =
        make_trace(strf("flows=200000 zipf=0.3 payload=300 pps=%.0f packets=40000 arrivals=poisson", pps));
    nicsim::NicSim sim;
    auto& counters = sim.create_table("counters", 1 << 20, 32, nicsim::MemLevel::kEmem);
    nf::HhProgram program(counters);
    out.push_back({"HH", strf("%.0fkpps", pps / 1000.0), sim.run(program, trace).mean_latency()});
  }
}

}  // namespace
}  // namespace clara::bench

int main() {
  using namespace clara;
  using namespace clara::bench;

  header("Figure 1: latency variability of five NFs (simulated Netronome)",
         "2-4 variants per NF, same core logic; normalized spread up to ~13.8x");

  std::vector<Variant> variants;
  run_nat(variants);
  run_dpi(variants);
  run_fw(variants);
  run_lpm(variants);
  run_hh(variants);

  // Normalize within each NF against its fastest variant.
  std::map<std::string, double> fastest;
  for (const auto& v : variants) {
    auto [it, inserted] = fastest.try_emplace(v.nf, v.latency);
    if (!inserted) it->second = std::min(it->second, v.latency);
  }

  TextTable table({"NF", "variant", "latency (cycles)", "normalized"});
  double max_ratio = 1.0;
  for (const auto& v : variants) {
    const double ratio = v.latency / fastest[v.nf];
    max_ratio = std::max(max_ratio, ratio);
    table.add_row({v.nf, v.label, fmt(v.latency), fmt2(ratio) + "x"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nmax within-NF spread: %.1fx (paper: up to 13.8x)\n", max_ratio);
  return 0;
}
