// Ablation: ILP mapper vs. greedy baseline (DESIGN.md §3).
//
// The paper's mapper "estimates the best mapping by encoding a set of
// ILP constraints that emulate hand-tuning and optimizations". This
// ablation quantifies what the ILP buys over a first-fit greedy
// heuristic: per-NF estimated service cycles and end-to-end predicted
// latency under both mappers.
#include "bench_util.hpp"

int main() {
  using namespace clara;
  using namespace clara::bench;

  header("Ablation: ILP mapping vs greedy baseline",
         "the ILP emulates hand-tuning; greedy is the no-optimizer strawman");

  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto trace = make_trace("tcp=0.8 flows=8000 payload=600 pps=60000 packets=15000");

  struct Case {
    const char* name;
    cir::Function fn;
  };
  std::vector<Case> cases;
  cases.push_back({"nat", nf::build_nat_nf()});
  cases.push_back({"firewall", nf::build_fw_nf()});
  cases.push_back({"lpm", nf::build_lpm_nf({.rules = 10000, .use_flow_cache = true})});
  cases.push_back({"heavy_hitter", nf::build_hh_nf()});
  cases.push_back({"vnf_chain", nf::build_vnf_chain()});

  TextTable table({"NF", "ILP obj (cyc)", "greedy obj (cyc)", "ILP latency", "greedy latency", "greedy penalty"});
  for (auto& c : cases) {
    core::AnalyzeOptions ilp_options;
    core::AnalyzeOptions greedy_options;
    greedy_options.stages = core::PipelineStages::no_ilp();
    const auto a = analyze_or_die(analyzer, c.fn, trace, ilp_options);
    const auto b = analyze_or_die(analyzer, c.fn, trace, greedy_options);
    const double penalty = b.prediction.mean_latency_cycles / a.prediction.mean_latency_cycles;
    table.add_row({c.name, fmt(a.mapping.objective), fmt(b.mapping.objective),
                   fmt(a.prediction.mean_latency_cycles), fmt(b.prediction.mean_latency_cycles),
                   fmt2(penalty) + "x"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(penalty = greedy predicted latency / ILP predicted latency)\n");
  std::printf("at 60 kpps the easy instances coincide; the Θ constraints separate them under load:\n\n");

  // NAT at 3 Mpps: the single checksum accelerator saturates (≈2.7 Mpps
  // at 1000 B packets). The ILP's Θ constraint moves the checksum to NPU
  // software; greedy still picks the per-packet-cheapest accelerator and
  // its predicted latency blows up with the saturated queue.
  const auto hot_trace = make_trace("tcp=0.8 flows=8000 payload=1000 pps=3000000 packets=15000");
  const auto nat = nf::build_nat_nf();
  core::AnalyzeOptions ilp_options;
  core::AnalyzeOptions greedy_options;
  greedy_options.stages = core::PipelineStages::no_ilp();
  const auto a = analyze_or_die(analyzer, nat, hot_trace, ilp_options);
  const auto b = analyze_or_die(analyzer, nat, hot_trace, greedy_options);

  auto csum_pool = [&](const core::Analysis& analysis) -> std::string {
    // Report the unit the checksum site landed on via the porting report.
    const auto pos = analysis.report.find("hint:");
    return pos == std::string::npos ? "(none)" : analysis.report.substr(pos, 60);
  };

  TextTable hot({"mapper", "predicted latency (cyc)", "checksum binding"});
  hot.add_row({"ILP (Θ-aware)", fmt(a.prediction.mean_latency_cycles), csum_pool(a)});
  hot.add_row({"greedy", fmt(b.prediction.mean_latency_cycles), csum_pool(b)});
  std::printf("NAT @ 3 Mpps, 1000 B payloads (csum accel capacity ≈ 2.7 Mpps):\n%s", hot.render().c_str());
  return 0;
}
