// §4 accuracy summary — the paper's headline validation numbers:
// "For LPM, VNF, and NAT, we have observed a prediction inaccuracy of
// 12%, 3%, and 7%, respectively." This bench drives the obs accuracy
// ledger over the full NF×variant×workload validation matrix on the
// simulator substrate and, with --json=<path>, writes the tracked
// BENCH_accuracy.json (schema clara-bench-accuracy/1 — see
// docs/observability.md) that `clara bench diff` gates.
//
//   accuracy_summary [--json=BENCH_accuracy.json] [--jobs=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "obs/accuracy.hpp"

int main(int argc, char** argv) {
  using namespace clara;
  using namespace clara::bench;

  std::string json_path;
  obs::AccuracyOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::strtoul(arg.c_str() + 7, nullptr, 10);
      parallel::set_jobs(options.jobs ? options.jobs : 1);
    } else {
      std::fprintf(stderr, "usage: accuracy_summary [--json=<path>] [--jobs=N]\n");
      return 1;
    }
  }

  header("Section 4: prediction inaccuracy summary (LPM / VNF / NAT)",
         "paper reports 12% / 3% / 7% mean inaccuracy");

  const obs::AccuracyLedger ledger(options);
  const auto report = ledger.run();

  // The paper-comparison table first (the §4 headline), then the full
  // ledger with per-component attribution.
  const auto find_nf = [&](const char* name) -> const obs::NfAccuracy* {
    for (const auto& nf : report.per_nf) {
      if (nf.nf == name) return &nf;
    }
    return nullptr;
  };
  TextTable paper({"NF", "paper inaccuracy", "measured inaccuracy (mean)", "worst point"});
  const struct {
    const char* nf;
    const char* paper_err;
  } kPaperRows[] = {{"lpm", "12%"}, {"vnf-chain", "3%"}, {"nat", "7%"}};
  for (const auto& row : kPaperRows) {
    const auto* nf = find_nf(row.nf);
    paper.add_row({row.nf, row.paper_err, nf ? pct(nf->mean_rel_err) : "n/a",
                   nf ? pct(nf->max_rel_err) : "n/a"});
  }
  std::printf("%s\n", paper.render().c_str());

  std::printf("full validation matrix (seed %llu):\n%s",
              (unsigned long long)report.seed, report.render().c_str());
  report.publish_metrics();

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = report.to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return report.failures > 0 ? 1 : 0;
}
