// §4 accuracy summary — the paper's headline validation numbers:
// "For LPM, VNF, and NAT, we have observed a prediction inaccuracy of
// 12%, 3%, and 7%, respectively." This bench computes the same
// aggregate (mean relative error over each NF's sweep) on the simulator
// substrate.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.hpp"

namespace clara::bench {
namespace {

double mean_of(const std::vector<double>& v) {
  double total = 0.0;
  for (const double x : v) total += x;
  return v.empty() ? 0.0 : total / static_cast<double>(v.size());
}

}  // namespace
}  // namespace clara::bench

int main() {
  using namespace clara;
  using namespace clara::bench;

  header("Section 4: prediction inaccuracy summary (LPM / VNF / NAT)",
         "paper reports 12% / 3% / 7% mean inaccuracy");

  core::Analyzer analyzer(lnic::netronome_agilio_cx());

  // LPM over table sizes.
  std::vector<double> lpm_errors;
  {
    const auto trace = make_trace("tcp=0.8 flows=5000 payload=300 pps=60000 packets=20000");
    for (std::uint64_t entries = 5000; entries <= 30000; entries += 5000) {
      const auto analysis =
          analyze_or_die(analyzer, nf::build_lpm_nf({.rules = entries, .use_flow_cache = false}), trace);
      nicsim::NicSim sim;
      auto& lpm = sim.create_lpm("routes", entries, 0);
      nf::LpmProgram ported(lpm, false);
      const auto stats = sim.run(ported, trace);
      lpm_errors.push_back(std::abs(analysis.prediction.mean_latency_cycles - stats.mean_latency()) /
                           stats.mean_latency());
    }
  }

  // VNF over payload sizes.
  std::vector<double> vnf_errors;
  {
    const auto vnf = nf::build_vnf_chain();
    for (int payload = 200; payload <= 1400; payload += 300) {
      const auto trace = make_trace(strf("tcp=0.8 flows=4000 payload=%d pps=60000 packets=15000", payload));
      const auto analysis = analyze_or_die(analyzer, vnf, trace);
      nicsim::NicSim sim;
      auto& meters =
          sim.create_table("meters", 4096, 32, level_of(analyzer.profile(), analysis.mapping.state_region[0]));
      auto& stats_table = sim.create_table("flow_stats", 16384, 32,
                                           level_of(analyzer.profile(), analysis.mapping.state_region[1]));
      nf::VnfProgram ported(meters, stats_table);
      const auto stats = sim.run(ported, trace);
      vnf_errors.push_back(std::abs(analysis.prediction.mean_latency_cycles - stats.mean_latency()) /
                           stats.mean_latency());
    }
  }

  // NAT over payload sizes.
  std::vector<double> nat_errors;
  {
    const auto nat = nf::build_nat_nf();
    for (int payload = 200; payload <= 1400; payload += 300) {
      const auto trace = make_trace(strf("tcp=0.8 flows=10000 payload=%d pps=60000 packets=15000", payload));
      const auto analysis = analyze_or_die(analyzer, nat, trace);
      nicsim::NicSim sim;
      auto& table = sim.create_table("flow_table", 131072, 64,
                                     level_of(analyzer.profile(), analysis.mapping.state_region[0]));
      nf::NatProgram ported(table, true);
      const auto stats = sim.run(ported, trace);
      nat_errors.push_back(std::abs(analysis.prediction.mean_latency_cycles - stats.mean_latency()) /
                           stats.mean_latency());
    }
  }

  TextTable table({"NF", "paper inaccuracy", "measured inaccuracy (mean)", "worst point"});
  table.add_row({"LPM", "12%", pct(mean_of(lpm_errors)), pct(*std::max_element(lpm_errors.begin(), lpm_errors.end()))});
  table.add_row({"VNF", "3%", pct(mean_of(vnf_errors)), pct(*std::max_element(vnf_errors.begin(), vnf_errors.end()))});
  table.add_row({"NAT", "7%", pct(mean_of(nat_errors)), pct(*std::max_element(nat_errors.begin(), nat_errors.end()))});
  std::printf("%s", table.render().c_str());
  return 0;
}
