// Figure 3(b) — VNF chain (DPI, metering, header modification, flow
// statistics): predicted vs. actual latency over packet payload size
// 200->1400 B. The paper's curve grows with payload (the DPI scan
// dominates) with ~3% prediction inaccuracy.
#include <algorithm>

#include "bench_util.hpp"

int main() {
  using namespace clara;
  using namespace clara::bench;

  header("Figure 3(b): VNF chain predicted vs actual latency over payload size",
         "latency grows with payload (DPI scan dominates), 200->1400 B; paper error ~3%");

  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto vnf = nf::build_vnf_chain();

  TextTable table({"payload (B)", "predicted (Kcyc)", "actual (Kcyc)", "error"});
  double worst_error = 0.0;
  for (int payload = 200; payload <= 1400; payload += 200) {
    const auto trace = make_trace(strf("tcp=0.8 flows=4000 payload=%d pps=60000 packets=20000", payload));
    const auto analysis = analyze_or_die(analyzer, vnf, trace);

    nicsim::NicSim sim;
    const auto& profile = analyzer.profile();
    auto& meters = sim.create_table("meters", 4096, 32, level_of(profile, analysis.mapping.state_region[0]));
    auto& stats_table =
        sim.create_table("flow_stats", 16384, 32, level_of(profile, analysis.mapping.state_region[1]));
    nf::VnfProgram ported(meters, stats_table);
    const auto stats = sim.run(ported, trace);

    const double predicted = analysis.prediction.mean_latency_cycles;
    const double actual = stats.mean_latency();
    const double error = std::abs(predicted - actual) / actual;
    worst_error = std::max(worst_error, error);
    table.add_row({strf("%d", payload), fmt1(predicted / 1000.0), fmt1(actual / 1000.0), pct(error)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nworst-case prediction error: %.1f%% (paper reports 3%% for the VNF chain)\n",
              worst_error * 100.0);
  return 0;
}
