// Figure 3(c) — NAT: predicted vs. actual latency over packet payload
// size 200->1400 B. The paper's curve rises from ~5,000 to ~11,000
// cycles (datapath per-byte costs plus the checksum), with ~7%
// prediction inaccuracy.
#include <algorithm>

#include "bench_util.hpp"

int main() {
  using namespace clara;
  using namespace clara::bench;

  header("Figure 3(c): NAT predicted vs actual latency over payload size",
         "latency (cycles) rises roughly linearly 200->1400 B (~5k->11k in the paper); error ~7%");

  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto nat = nf::build_nat_nf();

  TextTable table({"payload (B)", "predicted (cyc)", "actual (cyc)", "error"});
  double worst_error = 0.0;
  for (int payload = 200; payload <= 1400; payload += 200) {
    const auto trace = make_trace(strf("tcp=0.8 flows=10000 payload=%d pps=60000 packets=20000", payload));
    const auto analysis = analyze_or_die(analyzer, nat, trace);

    nicsim::NicSim sim;
    auto& table_hw =
        sim.create_table("flow_table", 131072, 64, level_of(analyzer.profile(), analysis.mapping.state_region[0]));
    nf::NatProgram ported(table_hw, /*use_csum_accel=*/true);
    const auto stats = sim.run(ported, trace);

    const double predicted = analysis.prediction.mean_latency_cycles;
    const double actual = stats.mean_latency();
    const double error = std::abs(predicted - actual) / actual;
    worst_error = std::max(worst_error, error);
    table.add_row({strf("%d", payload), fmt(predicted), fmt(actual), pct(error)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nworst-case prediction error: %.1f%% (paper reports 7%% for NAT)\n", worst_error * 100.0);
  return 0;
}
