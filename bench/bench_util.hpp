// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints the same rows/series the paper's figure plots, a
// "paper shape" annotation describing what the original showed, and the
// observation from this run. Absolute cycle counts come from the
// simulator substrate (DESIGN.md §6), so shapes — growth trends, who
// wins, error magnitudes — are the comparison target.
#pragma once

#include <cstdio>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/clara.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "workload/tracegen.hpp"

namespace clara::bench {

inline workload::Trace make_trace(const std::string& spec) {
  auto profile = workload::parse_profile(spec);
  if (!profile.ok()) {
    std::fprintf(stderr, "bad workload spec '%s': %s\n", spec.c_str(), profile.error().message.c_str());
    std::exit(1);
  }
  return workload::generate_trace(profile.value());
}

inline nicsim::MemLevel level_of(const lnic::NicProfile& profile, NodeId region) {
  switch (profile.graph.node(region).memory()->kind) {
    case lnic::MemKind::kLocal: return nicsim::MemLevel::kLocal;
    case lnic::MemKind::kCtm: return nicsim::MemLevel::kCtm;
    case lnic::MemKind::kImem: return nicsim::MemLevel::kImem;
    case lnic::MemKind::kEmem: return nicsim::MemLevel::kEmem;
  }
  return nicsim::MemLevel::kEmem;
}

inline core::Analysis analyze_or_die(const core::Analyzer& analyzer, const cir::Function& fn,
                                     const workload::Trace& trace, const core::AnalyzeOptions& options = {}) {
  auto analysis = analyzer.analyze(fn, trace, options);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis of '%s' failed: %s\n", fn.name.c_str(), analysis.error().message.c_str());
    std::exit(1);
  }
  return std::move(analysis).value();
}

inline void header(const char* title, const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("==============================================================\n");
}

inline std::string fmt(double v) { return strf("%.0f", v); }
inline std::string fmt1(double v) { return strf("%.1f", v); }
inline std::string fmt2(double v) { return strf("%.2f", v); }
inline std::string pct(double v) { return strf("%.1f%%", v * 100.0); }

}  // namespace clara::bench
