// §3.5 interference — co-resident NFs on one SmartNIC.
//
// Clara slices the LNIC ("model half of the NIC") and adds the
// neighbour's working set as cache pressure. Validation: the simulator
// runs both NFs truly co-resident (flows steered alternately to NAT and
// DPI on one device) and we compare per-NF degradation against Clara's
// co-resident prediction.
#include "bench_util.hpp"

namespace clara::bench {
namespace {

/// Steers even flows to one program, odd flows to the other — the NIC
/// switch's steering rule for two co-resident NFs.
class MuxProgram final : public nicsim::NicProgram {
 public:
  MuxProgram(nicsim::NicProgram& a, nicsim::NicProgram& b) : a_(&a), b_(&b) {}
  void handle(nicsim::NicApi& api) override {
    if (api.pkt().flow_id % 2 == 0) {
      a_->handle(api);
    } else {
      b_->handle(api);
    }
  }
  [[nodiscard]] std::string name() const override { return "mux"; }

 private:
  nicsim::NicProgram* a_;
  nicsim::NicProgram* b_;
};

}  // namespace
}  // namespace clara::bench

int main() {
  using namespace clara;
  using namespace clara::bench;

  header("Section 3.5: co-resident NF interference (NAT + DPI)",
         "co-residency degrades both NFs; Clara's sliced-LNIC model should track the direction/magnitude");

  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  // 1200 B payloads spill packet tails to EMEM, so the co-resident DPI
  // exerts real cache pressure on NAT's flow table (and vice versa).
  const auto trace = make_trace("tcp=0.8 flows=30000 zipf=0.4 payload=1200 pps=400000 packets=40000");

  const auto nat = nf::build_nat_nf();
  const auto dpi = nf::build_dpi_nf();

  // Clara: solo and co-resident predictions.
  const auto solo_nat = analyze_or_die(analyzer, nat, trace);
  const auto solo_dpi = analyze_or_die(analyzer, dpi, trace);
  auto co = analyzer.coresident(nat, trace, dpi, trace);
  if (!co.ok()) {
    std::fprintf(stderr, "co-resident analysis failed: %s\n", co.error().message.c_str());
    return 1;
  }

  // Simulator: solo runs, then a true co-resident run.
  nicsim::NicSim solo_sim_nat;
  auto& t1 = solo_sim_nat.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  nf::NatProgram nat_prog_solo(t1, true);
  const auto sim_solo_nat = solo_sim_nat.run(nat_prog_solo, trace);

  nicsim::NicSim solo_sim_dpi;
  nf::DpiProgram dpi_prog_solo;
  const auto sim_solo_dpi = solo_sim_dpi.run(dpi_prog_solo, trace);

  nicsim::NicSim co_sim;
  auto& t2 = co_sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  nf::NatProgram nat_prog(t2, true);
  nf::DpiProgram dpi_prog;
  MuxProgram mux(nat_prog, dpi_prog);
  const auto sim_co = co_sim.run(mux, trace);

  // Split the co-resident run's per-packet latencies back out per NF.
  // With no drops (checked), the latency series aligns with trace order.
  Accumulator co_nat, co_dpi;
  if (sim_co.drops == 0) {
    const auto& samples = sim_co.latency.samples();
    for (std::size_t i = 0; i < trace.packets.size(); ++i) {
      (trace.packets[i].flow_id % 2 == 0 ? co_nat : co_dpi).add(samples[i]);
    }
  }

  TextTable table({"metric", "NAT", "DPI"});
  table.add_row({"Clara solo latency (cyc)", fmt(solo_nat.prediction.mean_latency_cycles),
                 fmt(solo_dpi.prediction.mean_latency_cycles)});
  table.add_row({"Clara co-resident latency (cyc)", fmt(co.value().first.prediction.mean_latency_cycles),
                 fmt(co.value().second.prediction.mean_latency_cycles)});
  table.add_row({"Clara predicted degradation",
                 fmt2(co.value().first.prediction.mean_latency_cycles / solo_nat.prediction.mean_latency_cycles) + "x",
                 fmt2(co.value().second.prediction.mean_latency_cycles / solo_dpi.prediction.mean_latency_cycles) + "x"});
  table.add_row({"sim solo latency (cyc)", fmt(sim_solo_nat.mean_latency()), fmt(sim_solo_dpi.mean_latency())});
  table.add_row({"sim co-resident latency (cyc)", fmt(co_nat.mean()), fmt(co_dpi.mean())});
  table.add_row({"sim measured degradation", fmt2(co_nat.mean() / sim_solo_nat.mean_latency()) + "x",
                 fmt2(co_dpi.mean() / sim_solo_dpi.mean_latency()) + "x"});
  std::printf("%s", table.render().c_str());
  std::printf("\nsim co-resident EMEM cache hit rate: %.2f (NAT solo: %.2f)\n", sim_co.emem_cache_hit_rate,
              sim_solo_nat.emem_cache_hit_rate);
  std::printf("Clara co-resident cache hit estimate for NAT: %.2f (solo: %.2f)\n",
              co.value().first.prediction.emem_cache_hit_rate, solo_nat.prediction.emem_cache_hit_rate);
  return 0;
}
