// Library microbenchmarks — throughput of the tool itself. The analyzer
// has to be fast enough that "predict before you port" is interactively
// usable, and the perf trajectory has to be visible across PRs: with
// --json=<path> the harness writes BENCH_perf.json (schema documented in
// docs/performance.md), including serial-vs-parallel wall time for the
// branch-and-bound and sweep substrates so speedups are tracked, not
// assumed.
//
//   perf_micro [--json=BENCH_perf.json] [--jobs=N]
//
// Self-timed (steady_clock, warmup + repetition) rather than a benchmark
// framework: no external dependency, and the JSON stays under our
// control.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cir/interp.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/cache.hpp"
#include "core/clara.hpp"
#include "core/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "ilp/instances.hpp"
#include "ilp/simplex.hpp"
#include "ilp/solver.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "passes/api_subst.hpp"
#include "serve/loadgen.hpp"
#include "workload/tracegen.hpp"

namespace {

using namespace clara;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// --- micro harness -----------------------------------------------------------

struct MicroResult {
  std::string name;
  double ns_per_iter = 0.0;
  std::size_t iterations = 0;
  /// Real rate: items/s when the case declares items_per_iter, otherwise
  /// iterations/s (1e9 / ns_per_iter). Never 0 (docs/performance.md).
  double items_per_sec = 0.0;
};

/// Runs body() repeatedly: a short warmup, then enough iterations to
/// cover ~80ms of wall time (at least 5).
template <class F>
MicroResult run_micro(const std::string& name, F&& body, std::size_t items_per_iter = 0) {
  for (int i = 0; i < 2; ++i) body();
  const auto probe0 = Clock::now();
  body();
  const double probe_ms = std::max(1e-6, ms_since(probe0));
  const auto iters = std::max<std::size_t>(5, static_cast<std::size_t>(80.0 / probe_ms));
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) body();
  const double total_ms = ms_since(t0);
  MicroResult r;
  r.name = name;
  r.iterations = iters;
  r.ns_per_iter = total_ms * 1e6 / static_cast<double>(iters);
  r.items_per_sec = items_per_iter > 0
                        ? static_cast<double>(items_per_iter * iters) / (total_ms / 1e3)
                        : 1e9 / std::max(1e-9, r.ns_per_iter);
  std::printf("  %-28s %12.0f ns/iter  (%zu iters)\n", name.c_str(), r.ns_per_iter, iters);
  return r;
}

workload::Trace small_trace() {
  return workload::generate_trace(
      workload::parse_profile("tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000").value());
}

std::vector<MicroResult> run_micros() {
  std::vector<MicroResult> out;
  std::printf("microbenchmarks:\n");

  {
    auto profile = workload::parse_profile("flows=10000 packets=10000").value();
    out.push_back(run_micro("trace_generation", [&] {
      profile.seed++;
      volatile auto n = workload::generate_trace(profile).size();
      (void)n;
    }, 10'000));
  }
  {
    // A representative mapping-LP shape: 30 binaries, 10 rows.
    ilp::Model model;
    std::vector<int> vars;
    for (int i = 0; i < 30; ++i) vars.push_back(model.add_binary("b"));
    for (int r = 0; r < 10; ++r) {
      ilp::LinExpr row;
      for (int i = 0; i < 30; ++i) row.add(vars[i], ((i * 7 + r) % 5) - 2.0);
      model.add_constraint(std::move(row), ilp::Sense::kLe, 3.0);
    }
    ilp::LinExpr objective;
    for (int i = 0; i < 30; ++i) objective.add(vars[i], (i % 7) - 3.0);
    model.set_objective(std::move(objective));
    out.push_back(run_micro("simplex_solve", [&] {
      volatile auto s = ilp::solve_lp(model).status;
      (void)s;
    }));
  }
  {
    // Cost of one simplex pivot. The assignment LP runs a long
    // deterministic pivot trajectory (phase 1 with many artificials,
    // then phase 2), so ns/solve divided by the pivot count is exact
    // and setup cost amortizes away — this is the number the revised
    // engine is directly accountable for, gated tighter than the 10%
    // default (docs/performance.md). The dense reference engine is
    // measured on the identical trajectory; solver_pivot_ns staying
    // below solver_pivot_ns_dense is the acceptance bar for the
    // tableau replacement.
    const auto model = ilp::make_assignment(16);
    const auto measure_engine = [&](const char* name, ilp::LpAlgorithm algorithm) {
      ilp::LpOptions lp_options;
      lp_options.algorithm = algorithm;
      const auto pivots = std::max<std::size_t>(1, ilp::solve_lp(model, lp_options).pivots);
      auto r = run_micro(name, [&] {
        volatile auto s = ilp::solve_lp(model, lp_options).status;
        (void)s;
      }, pivots);
      r.ns_per_iter /= static_cast<double>(pivots);
      std::printf("  %-28s %12.1f ns/pivot (%zu pivots/solve)\n", "", r.ns_per_iter, pivots);
      return r;
    };
    out.push_back(measure_engine("solver_pivot_ns", ilp::LpAlgorithm::kRevised));
    out.push_back(measure_engine("solver_pivot_ns_dense", ilp::LpAlgorithm::kDense));
  }
  {
    auto fn = nf::build_nat_nf();
    passes::substitute_framework_apis(fn);
    passes::CostHints hints;
    const auto graph = passes::DataflowGraph::build(fn, hints);
    const auto profile = lnic::netronome_agilio_cx();
    const mapping::Mapper mapper(profile);
    out.push_back(run_micro("milp_map_nat", [&] {
      volatile auto ok = mapper.map(graph, hints).ok();
      (void)ok;
    }));
  }
  {
    auto fn = nf::build_nat_nf();
    passes::substitute_framework_apis(fn);
    class Handler final : public cir::VCallHandler {
     public:
      std::uint64_t handle(cir::VCall v, std::span<const std::uint64_t>) override {
        return v == cir::VCall::kTableLookup ? 1 : 0;
      }
    } handler;
    cir::Interpreter interp(fn, handler);
    out.push_back(run_micro("interpret_nat", [&] {
      volatile bool ok = interp.run().ok();
      (void)ok;
    }));
  }
  {
    const core::Analyzer analyzer(lnic::netronome_agilio_cx());
    const auto nat = nf::build_nat_nf();
    const auto trace = small_trace();
    // Cache off: this micro tracks the *cold* pipeline cost; the warm
    // path is measured separately by the cached_sweep scenario.
    core::AnalyzeOptions options;
    options.use_cache = false;
    out.push_back(run_micro("analyze_nat_end_to_end", [&] {
      volatile auto ok = analyzer.analyze(nat, trace, options).ok();
      (void)ok;
    }));
  }
  {
    nicsim::NicSim sim;
    auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
    nf::NatProgram program(table, true);
    const auto trace = small_trace();
    std::size_t i = 0;
    out.push_back(run_micro("simulate_nat_packet", [&] {
      volatile auto c = sim.measure_one(program, trace.packets[i++ % trace.size()]);
      (void)c;
    }, 1));
    // The always-on overhead check: identical body, recorder enabled vs
    // disabled, in alternating blocks with min-of-blocks per arm so the
    // comparison survives scheduler noise. The built-in instrumentation
    // records nothing per packet (events come from the pool, solver
    // waves, cache, and faults), so this is what production pays here.
    {
      const auto block = [&](bool enabled, std::size_t iters) {
        obs::recorder().set_enabled(enabled);
        const auto t0 = Clock::now();
        for (std::size_t k = 0; k < iters; ++k) {
          volatile auto c = sim.measure_one(program, trace.packets[i++ % trace.size()]);
          (void)c;
        }
        obs::recorder().set_enabled(true);
        return ms_since(t0) * 1e6 / static_cast<double>(iters);
      };
      constexpr std::size_t kBlock = 20'000;
      (void)block(true, kBlock);  // warmup
      (void)block(false, kBlock);
      double on_ns = 1e300;
      double off_ns = 1e300;
      for (int rep = 0; rep < 7; ++rep) {
        on_ns = std::min(on_ns, block(true, kBlock));
        off_ns = std::min(off_ns, block(false, kBlock));
      }
      std::printf("  recorder overhead on simulate_nat_packet: %+.2f%% (enabled vs disabled)\n",
                  off_ns > 0 ? 100.0 * (on_ns - off_ns) / off_ns : 0.0);
    }
    // Worst case: one synthetic event per packet — bounds what adding a
    // per-packet record() would cost, NOT what the recorder costs today.
    out.push_back(run_micro("simulate_nat_packet_recorded", [&] {
      obs::record(obs::FlightEventKind::kMark, i);
      volatile auto c = sim.measure_one(program, trace.packets[i++ % trace.size()]);
      (void)c;
    }, 1));
  }
  {
    // Steady-state cost of the batched datapath per delivered packet:
    // NicSim::run over a whole trace, so DMA/queue/thread-binding and
    // the statistics fold are all in the loop (measure_one above times
    // the program-only path). This is the number the structure-of-
    // arrays rewrite is accountable for.
    nicsim::NicSim sim;
    auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
    nf::NatProgram program(table, true);
    const auto trace = small_trace();
    auto r = run_micro("simulate_batch_ns_per_pkt", [&] {
      volatile auto p = sim.run(program, trace).packets;
      (void)p;
    }, trace.size());
    r.ns_per_iter /= static_cast<double>(trace.size());
    std::printf("  %-28s %12.1f ns/packet (%zu packets/run)\n", "", r.ns_per_iter, trace.size());
    out.push_back(r);
  }
  {
    // Raw cost of one record() call into the calling thread's ring.
    std::uint64_t n = 0;
    out.push_back(run_micro("recorder_record", [&] {
      obs::record(obs::FlightEventKind::kMark, n++);
    }, 1));
  }
  {
    nicsim::SetAssocCache cache(3_MiB, 64, 8);
    std::uint64_t addr = 0;
    out.push_back(run_micro("emem_cache_access", [&] {
      volatile bool hit = cache.access(addr);
      (void)hit;
      addr += 4096;
    }, 1));
  }
  {
    Rng rng(1);
    const ZipfSampler zipf(100000, 1.1);
    out.push_back(run_micro("zipf_sample", [&] {
      volatile auto s = zipf.sample(rng);
      (void)s;
    }, 1));
  }
  return out;
}

// --- serial vs parallel comparisons ------------------------------------------

struct ParallelResult {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double speedup = 0.0;
  std::size_t jobs = 0;
  std::uint64_t pivots = 0;          // B&B case
  std::uint64_t nodes = 0;           // B&B case
  /// Work rate in the scenario's own unit: B&B nodes/s for the solver,
  /// replayed packets/s for the sweep. The JSON emits whichever pair is
  /// meaningful (nodes_per_sec_* or packets_per_sec_*), never a zero
  /// placeholder.
  double nodes_per_sec_serial = 0.0;      // B&B case
  double nodes_per_sec_parallel = 0.0;    // B&B case
  double packets_per_sec_serial = 0.0;    // sweep case
  double packets_per_sec_parallel = 0.0;  // sweep case
  bool identical_results = false;
  /// jobs > hardware_concurrency: the speedup is not a fair measure of
  /// the substrate (threads time-slice), so regression gating skips it.
  bool oversubscribed = false;
};

ParallelResult bench_branch_and_bound(std::size_t jobs) {
  ParallelResult r;
  r.name = "milp_branch_and_bound";
  r.jobs = jobs;
  // Market-split (Cornuéjols–Dawande): hard enough to keep many waves
  // busy. Shared with `clara bench milp_branch_and_bound` so the CLI and
  // this harness time the same model (ilp/instances.hpp).
  const auto model = ilp::make_market_split(20, 3);
  ilp::SolveOptions options;
  options.max_nodes = 10'000;

  options.jobs = 1;
  auto t0 = Clock::now();
  const auto serial = ilp::solve_milp(model, options);
  r.serial_ms = ms_since(t0);

  options.jobs = jobs;
  t0 = Clock::now();
  const auto parallel = ilp::solve_milp(model, options);
  r.parallel_ms = ms_since(t0);

  r.speedup = r.parallel_ms > 0 ? r.serial_ms / r.parallel_ms : 0.0;
  r.pivots = serial.pivots;
  r.nodes = serial.nodes_explored;
  r.nodes_per_sec_serial = r.serial_ms > 0 ? static_cast<double>(r.nodes) / (r.serial_ms / 1e3) : 0.0;
  r.nodes_per_sec_parallel =
      r.parallel_ms > 0 ? static_cast<double>(r.nodes) / (r.parallel_ms / 1e3) : 0.0;
  r.identical_results = serial.status == parallel.status &&
                        serial.objective == parallel.objective && serial.values == parallel.values &&
                        serial.nodes_explored == parallel.nodes_explored &&
                        serial.pivots == parallel.pivots;
  return r;
}

ParallelResult bench_sweep(std::size_t jobs) {
  ParallelResult r;
  r.name = "sweep_replay";
  r.jobs = jobs;
  constexpr std::size_t kPoints = 8;
  constexpr std::uint64_t kPackets = 4'000;

  const auto eval = [](const core::SweepPoint& point, core::SweepResult& result) {
    auto profile =
        workload::parse_profile("tcp=0.8 flows=2000 payload=300 packets=4000").value();
    profile.pps = point.load_pps;
    profile.seed = point.seed;
    const auto trace = workload::generate_trace(profile);
    nicsim::NicSim sim;
    auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
    nf::NatProgram program(table, true);
    const auto stats = sim.run(program, trace);
    result.value = stats.mean_latency();
    result.stats.add(stats.mean_latency());
  };

  std::vector<double> loads;
  for (std::size_t i = 0; i < kPoints; ++i) {
    loads.push_back(20'000.0 + 20'000.0 * static_cast<double>(i));
  }
  const auto grid = core::make_grid(loads, {}, 42);

  core::SweepOptions options;
  options.jobs = 1;
  auto t0 = Clock::now();
  const auto serial = core::run_sweep(grid, eval, options);
  r.serial_ms = ms_since(t0);

  options.jobs = jobs;
  t0 = Clock::now();
  const auto parallel = core::run_sweep(grid, eval, options);
  r.parallel_ms = ms_since(t0);

  r.speedup = r.parallel_ms > 0 ? r.serial_ms / r.parallel_ms : 0.0;
  const double total_packets = static_cast<double>(kPackets * kPoints);
  r.packets_per_sec_serial = total_packets / (r.serial_ms / 1e3);
  r.packets_per_sec_parallel = total_packets / (r.parallel_ms / 1e3);
  r.identical_results = serial.size() == parallel.size();
  for (std::size_t i = 0; i < serial.size() && r.identical_results; ++i) {
    r.identical_results = serial[i].value == parallel[i].value;
  }
  return r;
}

// --- cached analysis sweep ---------------------------------------------------

struct CacheBenchResult {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  /// cold_ms / warm_ms — the headline number tracked across PRs.
  double cache_warm_speedup = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t warm_ilp_solves = 0;  // must be 0: a warm pass skips the ILP
  bool identical_results = false;
};

/// Analyzes a batch of NFs twice against the same trace: once against a
/// cleared cache (cold) and once warm. The warm pass must be bit-identical
/// and run zero ILP solves; the speedup is what interactive re-analysis
/// (sweeps, co-residence studies, CI reruns) actually feels.
CacheBenchResult bench_cached_sweep() {
  CacheBenchResult r;
  const core::Analyzer analyzer(lnic::netronome_agilio_cx());
  std::vector<cir::Function> nfs;
  nfs.push_back(nf::build_nat_nf());
  nfs.push_back(nf::build_hh_nf());
  nfs.push_back(nf::build_vnf_chain());
  const auto trace = small_trace();

  const auto run_pass = [&] {
    std::vector<double> latencies;
    for (const auto& fn : nfs) {
      auto analysis = analyzer.analyze(fn, trace);
      latencies.push_back(analysis.ok() ? analysis.value().prediction.mean_latency_cycles : -1.0);
    }
    return latencies;
  };

  core::analysis_cache().clear();
  auto t0 = Clock::now();
  const auto cold = run_pass();
  r.cold_ms = ms_since(t0);

  auto& solves = obs::metrics().counter("ilp/solves");
  const std::uint64_t solves_before = solves.value();
  t0 = Clock::now();
  const auto warm = run_pass();
  r.warm_ms = ms_since(t0);

  r.warm_ilp_solves = solves.value() - solves_before;
  r.cache_warm_speedup = r.warm_ms > 0 ? r.cold_ms / r.warm_ms : 0.0;
  r.identical_results = cold == warm;
  const auto stats = core::analysis_cache().stats();
  r.hits = stats.hits;
  r.misses = stats.misses;
  return r;
}

// --- incremental mapping repair ----------------------------------------------

struct RepairBenchResult {
  double cold_remap_ms = 0.0;
  double repair_ms = 0.0;
  /// cold_remap_ms / repair_ms — the headline number tracked across PRs.
  double repair_remap_speedup = 0.0;
  std::size_t displaced_nodes = 0;
  bool repaired_flagged = false;
  bool feasible = false;
};

/// Solves nat healthy, fails the checksum accelerator, then compares a
/// cold re-solve of the faulted model against Mapper::repair, which pins
/// the surviving assignments and re-solves only the displaced nodes.
RepairBenchResult bench_repair() {
  RepairBenchResult r;
  auto fn = nf::build_nat_nf();
  passes::substitute_framework_apis(fn);
  passes::CostHints hints;
  const auto graph = passes::DataflowGraph::build(fn, hints);

  const auto healthy_profile = lnic::netronome_agilio_cx();
  const mapping::Mapper healthy(healthy_profile);
  auto previous = healthy.map(graph, hints);
  if (!previous) return r;

  auto faulted_profile = lnic::netronome_agilio_cx();
  if (!faulted_profile.graph.mark_offline("csum")) return r;
  const mapping::Mapper faulted(faulted_profile);

  constexpr int kIters = 20;
  for (int i = 0; i < 2; ++i) {  // warmup both paths
    (void)faulted.map(graph, hints);
    (void)faulted.repair(graph, hints, previous.value());
  }
  auto t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    volatile bool ok = faulted.map(graph, hints).ok();
    (void)ok;
  }
  r.cold_remap_ms = ms_since(t0) / kIters;

  t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    volatile bool ok = faulted.repair(graph, hints, previous.value()).ok();
    (void)ok;
  }
  r.repair_ms = ms_since(t0) / kIters;
  r.repair_remap_speedup = r.repair_ms > 0 ? r.cold_remap_ms / r.repair_ms : 0.0;

  auto repaired = faulted.repair(graph, hints, previous.value());
  r.feasible = repaired.ok();
  if (repaired.ok()) {
    r.repaired_flagged = repaired.value().repaired;
    r.displaced_nodes = repaired.value().repair_displaced;
  }
  return r;
}

// --- analysis-as-a-service daemon --------------------------------------------

/// Spawns an in-process clarad on a temporary socket and hammers it with
/// the serve loadgen's deterministic request mix (analyze / sweep /
/// repair / validate across 16 connections). The client-observed
/// latency percentiles land in BENCH_perf.json as serve_p50_us /
/// serve_p99_us / serve_p999_us, and the warm hit rate proves a
/// long-lived daemon answers repeated analyses from the shared cache.
serve::LoadGenReport bench_serve() {
  serve::LoadGenOptions options;
  options.requests = 1200;
  options.connections = 16;
  auto report = serve::run_loadgen(options);
  if (!report) {
    std::fprintf(stderr, "serve loadgen failed: %s\n", report.error().message.c_str());
    return {};
  }
  return std::move(report).value();
}

// --- output ------------------------------------------------------------------

void write_json(const std::string& path, std::size_t jobs, const std::vector<MicroResult>& micros,
                const std::vector<ParallelResult>& par, const CacheBenchResult& cache,
                const RepairBenchResult& repair, const serve::LoadGenReport& serve_report) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"clara-bench-perf/1\",\n");
  std::fprintf(f, "  \"jobs\": %zu,\n", jobs);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "  \"micro\": [\n");
  for (std::size_t i = 0; i < micros.size(); ++i) {
    const auto& m = micros[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_iter\": %.1f, \"iterations\": %zu, "
                 "\"items_per_sec\": %.1f}%s\n",
                 m.name.c_str(), m.ns_per_iter, m.iterations, m.items_per_sec,
                 i + 1 < micros.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"parallel\": [\n");
  for (std::size_t i = 0; i < par.size(); ++i) {
    const auto& p = par[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"jobs\": %zu, \"serial_ms\": %.2f, \"parallel_ms\": %.2f, "
                 "\"speedup\": %.3f, \"pivots\": %llu, \"nodes\": %llu, ",
                 p.name.c_str(), p.jobs, p.serial_ms, p.parallel_ms, p.speedup,
                 static_cast<unsigned long long>(p.pivots), static_cast<unsigned long long>(p.nodes));
    // Work rate in the scenario's own unit: B&B nodes/s for the solver,
    // packets/s for the sweep — never a meaningless zero placeholder.
    if (p.nodes > 0) {
      std::fprintf(f, "\"nodes_per_sec_serial\": %.1f, \"nodes_per_sec_parallel\": %.1f, ",
                   p.nodes_per_sec_serial, p.nodes_per_sec_parallel);
    } else {
      std::fprintf(f, "\"packets_per_sec_serial\": %.1f, \"packets_per_sec_parallel\": %.1f, ",
                   p.packets_per_sec_serial, p.packets_per_sec_parallel);
    }
    std::fprintf(f, "\"identical_results\": %s, \"oversubscribed\": %s}%s\n",
                 p.identical_results ? "true" : "false", p.oversubscribed ? "true" : "false",
                 i + 1 < par.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"cache\": {\"name\": \"cached_sweep\", \"cold_ms\": %.2f, \"warm_ms\": %.2f, "
               "\"cache_warm_speedup\": %.3f, \"hits\": %llu, \"misses\": %llu, "
               "\"warm_ilp_solves\": %llu, \"identical_results\": %s},\n",
               cache.cold_ms, cache.warm_ms, cache.cache_warm_speedup,
               static_cast<unsigned long long>(cache.hits),
               static_cast<unsigned long long>(cache.misses),
               static_cast<unsigned long long>(cache.warm_ilp_solves),
               cache.identical_results ? "true" : "false");
  std::fprintf(f,
               "  \"repair\": {\"name\": \"repair_remap\", \"cold_remap_ms\": %.3f, "
               "\"repair_ms\": %.3f, \"repair_remap_speedup\": %.3f, \"displaced_nodes\": %zu, "
               "\"repaired_flagged\": %s, \"feasible\": %s},\n",
               repair.cold_remap_ms, repair.repair_ms, repair.repair_remap_speedup,
               repair.displaced_nodes, repair.repaired_flagged ? "true" : "false",
               repair.feasible ? "true" : "false");
  std::fprintf(f,
               "  \"serve\": {\"name\": \"serve_loadgen\", \"requests\": %zu, \"ok\": %zu, "
               "\"failed\": %zu, \"dropped_connections\": %zu, \"serve_retries\": %llu, "
               "\"serve_dropped\": %zu, \"serve_p50_us\": %.1f, "
               "\"serve_p99_us\": %.1f, \"serve_p999_us\": %.1f, \"serve_cold_hit_rate\": %.4f, "
               "\"serve_warm_hit_rate\": %.4f, \"warm_ilp_solves\": %llu}\n",
               serve_report.requests, serve_report.ok, serve_report.failed,
               serve_report.dropped_connections,
               static_cast<unsigned long long>(serve_report.retries),
               serve_report.dropped_requests, serve_report.p50_us, serve_report.p99_us,
               serve_report.p999_us, serve_report.cold_hit_rate, serve_report.warm_hit_rate,
               static_cast<unsigned long long>(serve_report.warm_ilp_solves));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t jobs = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg.rfind("--jobs=", 0) == 0) jobs = std::strtoul(arg.c_str() + 7, nullptr, 10);
    else {
      std::fprintf(stderr, "usage: perf_micro [--json=<path>] [--jobs=N]\n");
      return 1;
    }
  }
  if (jobs < 1) jobs = 1;
  // Size the shared pool for the parallel comparisons; serial runs pin
  // options.jobs = 1 and stay inline regardless.
  parallel::set_jobs(jobs);

  const auto micros = run_micros();

  std::printf("\nserial vs %zu-thread (hardware threads: %u):\n", jobs,
              std::thread::hardware_concurrency());
  std::vector<ParallelResult> par;
  par.push_back(bench_branch_and_bound(jobs));
  par.push_back(bench_sweep(jobs));
  const bool oversubscribed = jobs > std::max(1u, std::thread::hardware_concurrency());
  for (auto& p : par) {
    p.oversubscribed = oversubscribed;
    std::printf("  %-24s serial %8.2f ms  parallel %8.2f ms  speedup %.2fx  identical=%s%s\n",
                p.name.c_str(), p.serial_ms, p.parallel_ms, p.speedup,
                p.identical_results ? "yes" : "NO",
                p.oversubscribed ? "  (oversubscribed)" : "");
  }

  const auto cache = bench_cached_sweep();
  std::printf("\ncached analysis sweep (cold vs warm, 3 NFs):\n");
  std::printf("  cold %8.2f ms  warm %8.2f ms  cache_warm_speedup %.2fx  warm_ilp_solves=%llu  identical=%s\n",
              cache.cold_ms, cache.warm_ms, cache.cache_warm_speedup,
              static_cast<unsigned long long>(cache.warm_ilp_solves),
              cache.identical_results ? "yes" : "NO");

  const auto repair = bench_repair();
  std::printf("\nincremental mapping repair (nat, checksum accelerator failed):\n");
  std::printf("  cold remap %8.3f ms  repair %8.3f ms  repair_remap_speedup %.2fx  displaced=%zu  flagged=%s\n",
              repair.cold_remap_ms, repair.repair_ms, repair.repair_remap_speedup,
              repair.displaced_nodes, repair.repaired_flagged ? "yes" : "NO");

  const auto serve_report = bench_serve();
  std::printf("\nanalysis daemon under load (in-process clarad, mixed requests):\n  %s",
              serve_report.render().c_str());

  if (!json_path.empty()) write_json(json_path, jobs, micros, par, cache, repair, serve_report);

  bool ok = true;
  for (const auto& p : par) ok = ok && p.identical_results;
  if (!ok) {
    std::fprintf(stderr, "FAIL: parallel results differ from serial\n");
    return 1;
  }
  if (!cache.identical_results || cache.warm_ilp_solves != 0) {
    std::fprintf(stderr, "FAIL: warm cache pass diverged from cold pass\n");
    return 1;
  }
  if (!repair.feasible || !repair.repaired_flagged) {
    std::fprintf(stderr, "FAIL: incremental repair did not produce a flagged feasible mapping\n");
    return 1;
  }
  if (serve_report.dropped_connections > 0 || serve_report.ok == 0) {
    std::fprintf(stderr, "FAIL: serve loadgen dropped %zu connection(s) (%zu ok responses)\n",
                 serve_report.dropped_connections, serve_report.ok);
    return 1;
  }
  if (serve_report.dropped_requests > 0) {
    std::fprintf(stderr, "FAIL: serve loadgen silently dropped %zu request(s)\n",
                 serve_report.dropped_requests);
    return 1;
  }
  return 0;
}
