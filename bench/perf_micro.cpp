// Library microbenchmarks (google-benchmark): throughput of the tool
// itself — the analyzer has to be fast enough that "predict before you
// port" is interactively usable.
#include <benchmark/benchmark.h>

#include "cir/interp.hpp"
#include "common/rng.hpp"
#include "core/clara.hpp"
#include "ilp/simplex.hpp"
#include "ilp/solver.hpp"
#include "nf/nf_cir.hpp"
#include "nf/nf_ported.hpp"
#include "nicsim/sim.hpp"
#include "passes/api_subst.hpp"
#include "workload/tracegen.hpp"

namespace {

using namespace clara;

workload::Trace small_trace() {
  return workload::generate_trace(
      workload::parse_profile("tcp=0.8 flows=2000 payload=300 pps=60000 packets=2000").value());
}

void BM_TraceGeneration(benchmark::State& state) {
  auto profile = workload::parse_profile("flows=10000 packets=10000").value();
  for (auto _ : state) {
    profile.seed++;
    benchmark::DoNotOptimize(workload::generate_trace(profile));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TraceGeneration);

void BM_SimplexSolve(benchmark::State& state) {
  // A representative mapping-LP shape: 30 binaries, 20 rows.
  ilp::Model model;
  std::vector<int> vars;
  for (int i = 0; i < 30; ++i) vars.push_back(model.add_binary("b"));
  for (int r = 0; r < 10; ++r) {
    ilp::LinExpr row;
    for (int i = 0; i < 30; ++i) row.add(vars[i], ((i * 7 + r) % 5) - 2.0);
    model.add_constraint(std::move(row), ilp::Sense::kLe, 3.0);
  }
  ilp::LinExpr objective;
  for (int i = 0; i < 30; ++i) objective.add(vars[i], (i % 7) - 3.0);
  model.set_objective(std::move(objective));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_lp(model));
  }
}
BENCHMARK(BM_SimplexSolve);

void BM_MilpMapNat(benchmark::State& state) {
  auto fn = nf::build_nat_nf();
  passes::substitute_framework_apis(fn);
  passes::CostHints hints;
  const auto graph = passes::DataflowGraph::build(fn, hints);
  const auto profile = lnic::netronome_agilio_cx();
  const mapping::Mapper mapper(profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(graph, hints));
  }
}
BENCHMARK(BM_MilpMapNat);

void BM_InterpretNat(benchmark::State& state) {
  auto fn = nf::build_nat_nf();
  passes::substitute_framework_apis(fn);
  class Handler final : public cir::VCallHandler {
   public:
    std::uint64_t handle(cir::VCall v, std::span<const std::uint64_t>) override {
      return v == cir::VCall::kTableLookup ? 1 : 0;
    }
  } handler;
  cir::Interpreter interp(fn, handler);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.run());
  }
}
BENCHMARK(BM_InterpretNat);

void BM_AnalyzeNatEndToEnd(benchmark::State& state) {
  const core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto nat = nf::build_nat_nf();
  const auto trace = small_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(nat, trace));
  }
}
BENCHMARK(BM_AnalyzeNatEndToEnd);

void BM_SimulateNatPacket(benchmark::State& state) {
  nicsim::NicSim sim;
  auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
  nf::NatProgram program(table, true);
  const auto trace = small_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.measure_one(program, trace.packets[i++ % trace.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateNatPacket);

void BM_EmemCacheAccess(benchmark::State& state) {
  nicsim::SetAssocCache cache(3_MiB, 64, 8);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr += 4096;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmemCacheAccess);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  const ZipfSampler zipf(100000, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

}  // namespace

BENCHMARK_MAIN();
