// §6 extension — throughput prediction validation.
//
// The paper lists throughput prediction as future work ("capture core
// parallelism, queueing capacity and discipline, head-of-line
// blocking"). Clara's bottleneck analysis produces an idealized
// throughput bound per NF; this bench saturates the simulated device
// (offered load far above capacity) and compares the achieved rate
// against the prediction.
#include <functional>
#include <memory>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "core/sweep.hpp"

int main() {
  using namespace clara;
  using namespace clara::bench;

  header("Throughput: Clara's bottleneck bound vs simulator saturation",
         "idealized throughput estimation (paper §3.5/§6 extension)");

  core::Analyzer analyzer(lnic::netronome_agilio_cx());

  struct Case {
    const char* name;
    cir::Function fn;
    std::function<std::unique_ptr<nicsim::NicProgram>(nicsim::NicSim&)> make;
  };
  std::vector<Case> cases;
  cases.push_back({"rewrite", nf::build_rewrite_nf(), [](nicsim::NicSim&) {
                     return std::make_unique<nf::RewriteProgram>();
                   }});
  cases.push_back({"dpi-1400B", nf::build_dpi_nf(), [](nicsim::NicSim&) {
                     return std::make_unique<nf::DpiProgram>();
                   }});
  cases.push_back({"nat", nf::build_nat_nf(), [](nicsim::NicSim& sim) {
                     auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
                     return std::make_unique<nf::NatProgram>(table, true);
                   }});
  cases.push_back({"heavy-hitter", nf::build_hh_nf(), [](nicsim::NicSim& sim) {
                     auto& counters = sim.create_table("counters", 16384, 32, nicsim::MemLevel::kImem);
                     return std::make_unique<nf::HhProgram>(counters);
                   }});

  // Each case is an independent shard: the analyze+flood pair runs
  // concurrently across cases via the sweep driver, with results written
  // to disjoint per-case slots (output order stays deterministic).
  struct Row {
    std::string predicted, bottleneck, achieved, ratio;
  };
  std::vector<Row> rows(cases.size());
  std::vector<core::SweepPoint> points(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    points[i].index = i;
    points[i].seed = parallel::shard_seed(42, i);
  }
  core::run_sweep(points, [&](const core::SweepPoint& point, core::SweepResult& result) {
    auto& c = cases[point.index];
    const int payload = std::string(c.name).find("1400") != std::string::npos ? 1400 : 300;
    // Predict at a feasible mapping rate; saturate the simulator.
    const auto predict_trace =
        make_trace(strf("payload=%d pps=60000 packets=5000 flows=5000", payload));
    core::AnalyzeOptions options;
    options.map.pps = 60'000;
    const auto analysis = analyze_or_die(analyzer, c.fn, predict_trace, options);

    const auto flood = make_trace(strf("payload=%d pps=40000000 packets=40000 flows=5000", payload));
    nicsim::NicSim sim;
    auto program = c.make(sim);
    const auto stats = sim.run(*program, flood);

    rows[point.index] = {fmt(analysis.prediction.throughput_pps), analysis.prediction.bottleneck,
                         fmt(stats.achieved_pps),
                         fmt2(analysis.prediction.throughput_pps / stats.achieved_pps) + "x"};
    result.value = analysis.prediction.throughput_pps / stats.achieved_pps;
  });

  TextTable table({"NF", "predicted max pps", "bottleneck", "sim achieved pps", "ratio"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    table.add_row({cases[i].name, rows[i].predicted, rows[i].bottleneck, rows[i].achieved, rows[i].ratio});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(ratio near 1x = the bottleneck analysis found the real limiter;\n"
              " the ingress hub caps the device at ~20 Mpps regardless of NF)\n");
  return 0;
}
