// §6 extension — throughput prediction validation.
//
// The paper lists throughput prediction as future work ("capture core
// parallelism, queueing capacity and discipline, head-of-line
// blocking"). Clara's bottleneck analysis produces an idealized
// throughput bound per NF; this bench saturates the simulated device
// (offered load far above capacity) and compares the achieved rate
// against the prediction.
#include <chrono>
#include <functional>
#include <memory>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "core/cache.hpp"
#include "core/sweep.hpp"
#include "obs/metrics.hpp"

int main() {
  using namespace clara;
  using namespace clara::bench;

  header("Throughput: Clara's bottleneck bound vs simulator saturation",
         "idealized throughput estimation (paper §3.5/§6 extension)");

  core::analysis_cache().clear();  // defined cold start
  core::Analyzer analyzer(lnic::netronome_agilio_cx());

  struct Case {
    const char* name;
    cir::Function fn;
    std::function<std::unique_ptr<nicsim::NicProgram>(nicsim::NicSim&)> make;
  };
  std::vector<Case> cases;
  cases.push_back({"rewrite", nf::build_rewrite_nf(), [](nicsim::NicSim&) {
                     return std::make_unique<nf::RewriteProgram>();
                   }});
  cases.push_back({"dpi-1400B", nf::build_dpi_nf(), [](nicsim::NicSim&) {
                     return std::make_unique<nf::DpiProgram>();
                   }});
  cases.push_back({"nat", nf::build_nat_nf(), [](nicsim::NicSim& sim) {
                     auto& table = sim.create_table("flow_table", 131072, 64, nicsim::MemLevel::kEmem);
                     return std::make_unique<nf::NatProgram>(table, true);
                   }});
  cases.push_back({"heavy-hitter", nf::build_hh_nf(), [](nicsim::NicSim& sim) {
                     auto& counters = sim.create_table("counters", 16384, 32, nicsim::MemLevel::kImem);
                     return std::make_unique<nf::HhProgram>(counters);
                   }});

  // Each case is an independent shard: the analyze+flood pair runs
  // concurrently across cases via the sweep driver, with results written
  // to disjoint per-case slots (output order stays deterministic).
  struct Row {
    std::string predicted, bottleneck, achieved, ratio;
  };
  std::vector<Row> rows(cases.size());
  std::vector<core::SweepPoint> points(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    points[i].index = i;
    points[i].seed = parallel::shard_seed(42, i);
  }
  core::run_sweep(points, [&](const core::SweepPoint& point, core::SweepResult& result) {
    auto& c = cases[point.index];
    const int payload = std::string(c.name).find("1400") != std::string::npos ? 1400 : 300;
    // Predict at a feasible mapping rate; saturate the simulator.
    const auto predict_trace =
        make_trace(strf("payload=%d pps=60000 packets=5000 flows=5000", payload));
    core::AnalyzeOptions options;
    options.map.pps = 60'000;
    const auto analysis = analyze_or_die(analyzer, c.fn, predict_trace, options);

    const auto flood = make_trace(strf("payload=%d pps=40000000 packets=40000 flows=5000", payload));
    nicsim::NicSim sim;
    auto program = c.make(sim);
    const auto stats = sim.run(*program, flood);

    rows[point.index] = {fmt(analysis.prediction.throughput_pps), analysis.prediction.bottleneck,
                         fmt(stats.achieved_pps),
                         fmt2(analysis.prediction.throughput_pps / stats.achieved_pps) + "x"};
    result.value = analysis.prediction.throughput_pps / stats.achieved_pps;
  });

  TextTable table({"NF", "predicted max pps", "bottleneck", "sim achieved pps", "ratio"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    table.add_row({cases[i].name, rows[i].predicted, rows[i].bottleneck, rows[i].achieved, rows[i].ratio});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(ratio near 1x = the bottleneck analysis found the real limiter;\n"
              " the ingress hub caps the device at ~20 Mpps regardless of NF)\n");

  // Warm re-pass: the same analyses against the now-populated cache —
  // what an interactive re-scan pays per iteration. Every ILP solve must
  // come out of the mapping cache.
  auto& solves = obs::metrics().counter("ilp/solves");
  const std::uint64_t solves_before = solves.value();
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& c : cases) {
    const int payload = std::string(c.name).find("1400") != std::string::npos ? 1400 : 300;
    const auto predict_trace =
        make_trace(strf("payload=%d pps=60000 packets=5000 flows=5000", payload));
    core::AnalyzeOptions options;
    options.map.pps = 60'000;
    (void)analyze_or_die(analyzer, c.fn, predict_trace, options);
  }
  const double warm_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  const auto cache_stats = core::analysis_cache().stats();
  std::printf("\nwarm re-analysis of all %zu NFs: %.2f ms  (cache hits %llu, misses %llu, "
              "ilp solves on warm pass: %llu)\n",
              cases.size(), warm_ms, static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              static_cast<unsigned long long>(solves.value() - solves_before));
  return 0;
}
