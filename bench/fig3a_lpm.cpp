// Figure 3(a) — LPM: predicted vs. actual latency as the match-action
// table grows from 5,000 to 30,000 entries. The paper's curve grows
// roughly linearly to ~1,200 K cycles at 30 k entries, with ~12%
// prediction inaccuracy. Workload per §4: 60 kpps, average over the
// trace (shortened from 1M packets for runtime).
#include <algorithm>
#include <map>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace clara;
  using namespace clara::bench;

  header("Figure 3(a): LPM predicted vs actual latency over table size",
         "latency (K cycles) grows ~linearly with entries, 5k->30k; paper error ~12%");

  core::Analyzer analyzer(lnic::netronome_agilio_cx());
  const auto trace = make_trace("tcp=0.8 flows=5000 payload=300 pps=60000 packets=30000");

  TextTable table({"entries", "predicted (Kcyc)", "actual (Kcyc)", "error"});
  double worst_error = 0.0;
  for (std::uint64_t entries = 5000; entries <= 30000; entries += 5000) {
    const auto nf_fn = nf::build_lpm_nf({.rules = entries, .use_flow_cache = false});
    const auto analysis = analyze_or_die(analyzer, nf_fn, trace);

    nicsim::NicSim sim;
    auto& lpm = sim.create_lpm("routes", entries, 0);
    nf::LpmProgram ported(lpm, false);
    const auto stats = sim.run(ported, trace);

    const double predicted = analysis.prediction.mean_latency_cycles;
    const double actual = stats.mean_latency();
    const double error = std::abs(predicted - actual) / actual;
    worst_error = std::max(worst_error, error);
    table.add_row({strf("%llu", (unsigned long long)entries), fmt1(predicted / 1000.0), fmt1(actual / 1000.0),
                   pct(error)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nworst-case prediction error: %.1f%% (paper reports 12%% for LPM)\n", worst_error * 100.0);
  return 0;
}
